//! The parallel verification scheduler.
//!
//! A verification run is a batch of (benchmark, method) jobs submitted to a **persistent
//! worker pool** (`JobPool`): `jobs` threads spawned once when the [`Engine`] is
//! created and kept alive until it drops, draining an mpsc job queue. Each worker owns
//! its solver (wrapped in a [`CachingOracle`]) and a lock-free [`LocalTier`] that
//! survives across jobs *and across submissions*, and shares the engine-wide
//! [`MemoStore`] — so work one method discharges is available to every other method of
//! every later request. This is what makes the engine reusable as a long-lived service
//! (`marpled` submits one batch per client request to the same pool); a batch CLI run is
//! simply one submission followed by [`RunHandle::finish`].
//!
//! [`Engine::submit`] returns a [`RunHandle`] that yields reports **incrementally** as
//! workers complete them ([`RunHandle::next_report`]) and finally assembles them into
//! pre-allocated slots keyed by (benchmark, method) index, so aggregation is
//! deterministic regardless of completion order; verdicts themselves are
//! order-independent because every cached verdict is a pure function of its canonical
//! key.

use crate::cache::{CacheStatsSnapshot, MemoStore};
use crate::oracle::CachingOracle;
use crate::tier::LocalTier;
use hat_core::{Checker, MethodReport};
use hat_sfa::{EnumerationMode, InclusionMode};
use hat_suite::Benchmark;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a verification run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (1 = sequential).
    pub jobs: usize,
    /// Path of the persistent cache log; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Minterm enumeration strategy (incremental by default; naive is kept for
    /// differential testing and paper-faithful measurement).
    pub enumeration: EnumerationMode,
    /// Whether per-group alphabet pruning runs before DFA product construction (on by
    /// default; the unpruned path is kept for differential testing and measurement —
    /// both paths are verdict- and state-count-identical).
    pub prune: bool,
    /// How each per-group inclusion problem is decided (on-the-fly product walk by
    /// default; the materialising DFA-pair path is kept for differential testing and
    /// measurement — both paths are verdict-identical).
    pub inclusion: InclusionMode,
    /// Whether each worker fronts the shared store with a lock-free local read-through
    /// tier (on by default; the shared-only path is kept as the lock-traffic measurement
    /// baseline — verdicts are identical because every memo value is a pure function of
    /// its key).
    pub local_tiers: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            cache_path: None,
            enumeration: EnumerationMode::default(),
            prune: true,
            inclusion: InclusionMode::default(),
            local_tiers: true,
        }
    }
}

/// The verification results of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// ADT name.
    pub adt: String,
    /// Backing library name.
    pub library: String,
    /// One report per method, in method order.
    pub reports: Vec<MethodReport>,
    /// Summed per-method verification time (CPU-side; wall clock shrinks with `jobs`).
    pub check_time: Duration,
}

impl BenchmarkRun {
    /// Whether every method matched its expected verdict.
    pub fn all_as_expected(&self, bench: &Benchmark) -> bool {
        bench
            .methods
            .iter()
            .zip(&self.reports)
            .all(|(m, r)| r.verified == m.expect_verified)
    }

    /// Total SMT queries issued by this benchmark's methods.
    pub fn sat_queries(&self) -> usize {
        self.reports.iter().map(|r| r.stats.sat_queries).sum()
    }

    /// Total cache hits recorded by this benchmark's methods.
    pub fn cache_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.cache_hits).sum()
    }

    /// Total cache misses (queries that reached a solver).
    pub fn cache_misses(&self) -> usize {
        self.reports.iter().map(|r| r.stats.cache_misses).sum()
    }

    /// Total incremental enumeration checks issued by this benchmark's methods.
    pub fn enum_queries(&self) -> usize {
        self.reports.iter().map(|r| r.stats.enum_queries).sum()
    }

    /// Total pruned enumeration subtrees across this benchmark's methods.
    pub fn pruned_subtrees(&self) -> usize {
        self.reports.iter().map(|r| r.stats.pruned_subtrees).sum()
    }

    /// Total alphabet transformations answered from the minterm-set memo.
    pub fn minterm_memo_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.minterm_memo_hits).sum()
    }

    /// Total inclusion checks answered from the inclusion-verdict memo.
    pub fn inclusion_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.inclusion_memo_hits)
            .sum()
    }

    /// Total DFA states constructed by this benchmark's methods.
    pub fn dfa_states(&self) -> usize {
        self.reports.iter().map(|r| r.stats.dfa_states).sum()
    }

    /// Total DFA transitions constructed by this benchmark's methods.
    pub fn dfa_transitions(&self) -> usize {
        self.reports.iter().map(|r| r.stats.dfa_transitions).sum()
    }

    /// Total alphabet symbols dropped by per-group pruning.
    pub fn alphabet_pruned(&self) -> usize {
        self.reports.iter().map(|r| r.stats.alphabet_pruned).sum()
    }

    /// Total DFA transitions answered from the transition memo.
    pub fn transition_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.transition_memo_hits)
            .sum()
    }

    /// Total product states discovered by on-the-fly inclusion walks.
    pub fn product_states(&self) -> usize {
        self.reports.iter().map(|r| r.stats.product_states).sum()
    }

    /// Total per-group product walks answered from the DFA-shape memo.
    pub fn shape_memo_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.shape_memo_hits).sum()
    }

    /// Total shared-tier shard-lock acquisitions by this benchmark's methods. With
    /// local read-through tiers enabled, repeat lookups are absorbed lock-free and this
    /// number drops while hit counts stay.
    pub fn shared_tier_locks(&self) -> usize {
        self.reports.iter().map(|r| r.stats.shared_tier_locks).sum()
    }

    /// Total solver work: standalone SMT queries plus incremental enumeration checks.
    /// This is the number to compare across enumeration modes (naive enumeration issues
    /// standalone queries; incremental enumeration issues scoped checks).
    pub fn total_solver_work(&self) -> usize {
        self.sat_queries() + self.enum_queries()
    }
}

/// The outcome of a whole run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-benchmark results, in input order.
    pub benchmarks: Vec<BenchmarkRun>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cache counters accumulated during this run (deltas, not lifetime totals).
    pub cache: CacheStatsSnapshot,
}

/// One (benchmark, method) verification job queued to the pool.
struct PoolJob {
    bench: Arc<Benchmark>,
    method: usize,
    /// Pre-computed axiom-set fingerprint prefix, shared by every method of a benchmark.
    key_prefix: Arc<String>,
    /// Knobs of the submitting run (enumeration/prune/inclusion are per-submission so a
    /// long-lived pool can serve differently-configured requests).
    enumeration: EnumerationMode,
    prune: bool,
    inclusion: InclusionMode,
    /// Slot index in the submitting run, echoed back with the report.
    token: usize,
    reply: Sender<JobOutcome>,
}

/// What a worker sends back for one job. `Err` carries the panic/run-failure message —
/// the worker itself survives and keeps draining the queue.
struct JobOutcome {
    token: usize,
    report: Result<MethodReport, String>,
}

/// A persistent verification worker pool: `jobs` threads spawned once, drained from an
/// mpsc queue, alive until the owning [`Engine`] drops. Dropping the pool closes the
/// queue and joins the workers — in-flight jobs finish first, which is what gives the
/// daemon its graceful-drain shutdown for free.
struct JobPool {
    queue: Option<Sender<PoolJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl JobPool {
    fn spawn(workers: usize, cache: Arc<MemoStore>, local_tiers: bool) -> Self {
        let (tx, rx) = channel::<PoolJob>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("hat-worker-{i}"))
                    .spawn(move || Self::worker_loop(&rx, &cache, local_tiers))
                    .expect("spawning a verification worker failed")
            })
            .collect();
        JobPool {
            queue: Some(tx),
            workers,
        }
    }

    fn worker_loop(rx: &Mutex<Receiver<PoolJob>>, cache: &Arc<MemoStore>, local_tiers: bool) {
        // One lock-free local tier per worker, shared by every oracle the worker
        // creates: promotions made while checking one method serve every later method
        // of the same worker — including methods of *later submissions* — without a
        // shard lock.
        let local = local_tiers.then(|| Rc::new(LocalTier::default()));
        loop {
            // Take the job with the receiver lock released again before checking, so a
            // long verification never blocks the other workers' queue access.
            let job = match rx.lock() {
                Ok(queue) => queue.recv(),
                Err(_) => break,
            };
            let Ok(job) = job else { break };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Self::run_job(&job, cache, local.as_ref())
            }));
            let report = match outcome {
                Ok(Ok(report)) => Ok(report),
                Ok(Err(message)) => Err(message),
                Err(panic) => {
                    let message = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "worker panicked".to_string());
                    Err(message)
                }
            };
            // A dropped RunHandle is fine: the outcome is simply discarded.
            let _ = job.reply.send(JobOutcome {
                token: job.token,
                report,
            });
        }
    }

    fn run_job(
        job: &PoolJob,
        cache: &Arc<MemoStore>,
        local: Option<&Rc<LocalTier>>,
    ) -> Result<MethodReport, String> {
        let bench = &job.bench;
        let method = &bench.methods[job.method];
        let mut oracle = CachingOracle::with_key_prefix(
            bench.delta.axioms.clone(),
            Arc::clone(cache),
            job.key_prefix.as_ref().clone(),
        );
        if let Some(local) = local {
            oracle = oracle.with_local_tier(Rc::clone(local));
        }
        let mut checker = Checker::with_oracle(bench.delta.clone(), Box::new(oracle));
        checker.inclusion.enumeration = job.enumeration;
        checker.inclusion.prune = job.prune;
        checker.inclusion.mode = job.inclusion;
        checker
            .check_method(&method.sig, &method.body)
            .map_err(|e| {
                format!(
                    "checking {}::{} failed to run: {e}",
                    bench.adt, method.sig.name
                )
            })
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        // Closing the queue lets every worker's `recv` return `Err` once the backlog is
        // drained; joining then waits for in-flight jobs to finish.
        self.queue.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One report as it streams out of the pool: which (benchmark, method) slot of the
/// submitted batch it belongs to, plus the report itself.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Index of the benchmark within the submitted slice.
    pub bench: usize,
    /// Index of the method within that benchmark.
    pub method: usize,
    /// The completed report.
    pub report: MethodReport,
}

/// An in-flight submission: jobs are running (or queued) on the engine's worker pool,
/// and reports can be consumed incrementally with [`RunHandle::next_report`] — this is
/// how the verification daemon streams per-job verdicts to its clients while the batch
/// is still running. [`RunHandle::finish`] drains the remainder and assembles the
/// deterministic [`RunSummary`].
#[derive(Debug)]
pub struct RunHandle<'e> {
    engine: &'e Engine,
    /// (bench index, method index) per job token.
    jobs: Vec<(usize, usize)>,
    /// Completed reports, keyed by job token.
    slots: Vec<Option<MethodReport>>,
    received: usize,
    rx: Receiver<JobOutcome>,
    benches: Vec<(String, String, usize)>,
    stats_before: CacheStatsSnapshot,
    start: Instant,
}

impl RunHandle<'_> {
    /// Number of jobs in this submission.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Blocks until the next report completes and returns it; `None` once every job of
    /// this submission has been yielded. Panics if a job failed to run (ill-formed
    /// input) or a worker died — the same contract the one-shot scheduler had.
    pub fn next_report(&mut self) -> Option<JobReport> {
        if self.received == self.jobs.len() {
            return None;
        }
        let outcome = self
            .rx
            .recv()
            .expect("a verification worker died with jobs outstanding");
        let (bench, method) = self.jobs[outcome.token];
        let report = match outcome.report {
            Ok(report) => report,
            Err(message) => panic!("{message}"),
        };
        self.slots[outcome.token] = Some(report.clone());
        self.received += 1;
        Some(JobReport {
            bench,
            method,
            report,
        })
    }

    /// Drains any remaining reports and assembles the deterministic summary: reports in
    /// (benchmark, method) input order, wall clock since submission, and the cache-
    /// counter deltas of this run.
    pub fn finish(mut self) -> RunSummary {
        while self.next_report().is_some() {}
        let mut results: Vec<BenchmarkRun> = self
            .benches
            .iter()
            .map(|(adt, library, methods)| BenchmarkRun {
                adt: adt.clone(),
                library: library.clone(),
                reports: Vec::with_capacity(*methods),
                check_time: Duration::ZERO,
            })
            .collect();
        for (&(b, _), slot) in self.jobs.iter().zip(&mut self.slots) {
            let report = slot.take().expect("every job ran");
            results[b].check_time += report.stats.total_time;
            results[b].reports.push(report);
        }
        self.engine.cache.flush();
        let after = self.engine.cache.stats();
        let stats_before = self.stats_before;
        RunSummary {
            benchmarks: results,
            wall: self.start.elapsed(),
            cache: CacheStatsSnapshot {
                // Saturating: with several concurrent submissions against one engine
                // (the daemon), another run's compaction-free counters only grow, but
                // per-run deltas must never underflow.
                hits: after.hits.saturating_sub(stats_before.hits),
                misses: after.misses.saturating_sub(stats_before.misses),
                // Disk replay happens at engine construction, so these deltas are 0 for
                // every run; lifetime values live in `Engine::cache().stats()`.
                disk_loaded: after.disk_loaded.saturating_sub(stats_before.disk_loaded),
                stale: after.stale.saturating_sub(stats_before.stale),
                minterm_hits: after.minterm_hits.saturating_sub(stats_before.minterm_hits),
                minterm_misses: after
                    .minterm_misses
                    .saturating_sub(stats_before.minterm_misses),
                transition_hits: after
                    .transition_hits
                    .saturating_sub(stats_before.transition_hits),
                transition_misses: after
                    .transition_misses
                    .saturating_sub(stats_before.transition_misses),
                lock_acquisitions: after
                    .lock_acquisitions
                    .saturating_sub(stats_before.lock_acquisitions),
            },
        }
    }
}

/// The parallel verification engine: a persistent worker pool plus the shared memo
/// store. Creating an engine spawns the pool; the engine stays ready to accept any
/// number of [`Engine::submit`] / [`Engine::check_benchmarks`] calls — concurrently,
/// from multiple threads — until it drops. This is the object a `marpled` daemon keeps
/// alive across client requests.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    // Declared before `cache` so workers join (and stop writing) before the store
    // flushes its log on drop.
    pool: JobPool,
    cache: Arc<MemoStore>,
}

impl Engine {
    /// Creates an engine, loading the persistent cache when one is configured and
    /// spawning the worker pool.
    pub fn new(config: EngineConfig) -> std::io::Result<Self> {
        let cache = match &config.cache_path {
            Some(path) => Arc::new(MemoStore::with_disk_log(path)?),
            None => Arc::new(MemoStore::in_memory()),
        };
        let pool = JobPool::spawn(config.jobs, Arc::clone(&cache), config.local_tiers);
        Ok(Engine {
            config,
            pool,
            cache,
        })
    }

    /// The shared memo store (e.g. for reporting lifetime statistics).
    pub fn cache(&self) -> &Arc<MemoStore> {
        &self.cache
    }

    /// The configuration the engine was created with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Submits every (benchmark, method) job of `benches` to the worker pool and
    /// returns a [`RunHandle`] that streams reports as they complete. Multiple
    /// submissions may be in flight at once — jobs from different submissions interleave
    /// on the same workers and share the same memo store, and each handle only ever
    /// sees its own reports.
    pub fn submit(&self, benches: &[Benchmark]) -> RunHandle<'_> {
        let start = Instant::now();
        let stats_before = self.cache.stats();
        // One fingerprint per benchmark, not per method job: canonicalising the axiom
        // set is not free and every method of a benchmark shares it.
        let shared: Vec<(Arc<Benchmark>, Arc<String>)> = benches
            .iter()
            .map(|b| {
                (
                    Arc::new(b.clone()),
                    Arc::new(CachingOracle::key_prefix_for(&b.delta.axioms)),
                )
            })
            .collect();
        let jobs: Vec<(usize, usize)> = benches
            .iter()
            .enumerate()
            .flat_map(|(b, bench)| (0..bench.methods.len()).map(move |m| (b, m)))
            .collect();
        let (reply, rx) = channel();
        let queue = self
            .pool
            .queue
            .as_ref()
            .expect("the pool queue lives as long as the engine");
        for (token, &(b, m)) in jobs.iter().enumerate() {
            let (bench, key_prefix) = &shared[b];
            queue
                .send(PoolJob {
                    bench: Arc::clone(bench),
                    method: m,
                    key_prefix: Arc::clone(key_prefix),
                    enumeration: self.config.enumeration,
                    prune: self.config.prune,
                    inclusion: self.config.inclusion,
                    token,
                    reply: reply.clone(),
                })
                .expect("the worker pool outlives every submission");
        }
        let slots = jobs.iter().map(|_| None).collect();
        RunHandle {
            engine: self,
            slots,
            received: 0,
            rx,
            benches: benches
                .iter()
                .map(|b| (b.adt.to_string(), b.library.to_string(), b.methods.len()))
                .collect(),
            jobs,
            stats_before,
            start,
        }
    }

    /// Verifies every method of every benchmark, fanning the (benchmark, method) jobs
    /// out over the worker pool, and blocks until the whole batch is done.
    pub fn check_benchmarks(&self, benches: &[Benchmark]) -> RunSummary {
        self.submit(benches).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_benches() -> Vec<Benchmark> {
        // Two small configurations keep this test quick even in debug builds.
        vec![
            hat_suite::find("ConnectedGraph", "Set").expect("configuration exists"),
            hat_suite::find("Stack", "LinkedList").expect("configuration exists"),
        ]
    }

    fn verdicts(summary: &RunSummary) -> Vec<Vec<bool>> {
        summary
            .benchmarks
            .iter()
            .map(|b| b.reports.iter().map(|r| r.verified).collect())
            .collect()
    }

    #[test]
    fn parallel_verdicts_match_sequential() {
        let benches = fast_benches();
        let sequential = Engine::new(EngineConfig::default())
            .expect("in-memory engine")
            .check_benchmarks(&benches);
        let parallel = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        assert_eq!(verdicts(&sequential), verdicts(&parallel));
        for (b, run) in benches.iter().zip(&sequential.benchmarks) {
            assert!(run.all_as_expected(b), "{}/{} regressed", b.adt, b.library);
        }
    }

    #[test]
    fn warm_cache_reduces_solver_work() {
        let benches = vec![hat_suite::find("ConnectedGraph", "Set").expect("configuration exists")];
        let engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let cold = engine.check_benchmarks(&benches);
        let warm = engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&cold), verdicts(&warm));
        assert!(warm.cache.hits > 0, "second run must hit the cache");
        assert!(
            warm.cache.misses < cold.cache.misses,
            "warm run should reach the solver less ({} vs {})",
            warm.cache.misses,
            cold.cache.misses
        );
    }

    #[test]
    fn pruned_and_memoised_construction_matches_the_unpruned_path() {
        let benches = fast_benches();
        let unpruned = Engine::new(EngineConfig {
            prune: false,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        let pruned_engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let pruned = pruned_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&unpruned), verdicts(&pruned));
        for (u, p) in unpruned.benchmarks.iter().zip(&pruned.benchmarks) {
            assert_eq!(
                u.dfa_states(),
                p.dfa_states(),
                "{}/{}: pruning changed the reachable DFA state set",
                u.adt,
                u.library
            );
            assert!(
                p.dfa_transitions() <= u.dfa_transitions(),
                "{}/{}: pruning produced more transitions",
                u.adt,
                u.library
            );
        }
        let total_pruned: usize = pruned.benchmarks.iter().map(|b| b.alphabet_pruned()).sum();
        assert!(total_pruned > 0, "no benchmark exercised the pruner");
        // The caching oracle memoises transitions run-wide: a second pass over the same
        // benchmarks must answer every derivative from the memo.
        let warm = pruned_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&pruned), verdicts(&warm));
        assert!(
            pruned_engine.cache().stats().transition_hits > 0,
            "structurally equal sub-automata must share memoised transitions"
        );
    }

    #[test]
    fn onthefly_inclusion_matches_the_materialised_path_and_shares_shapes() {
        let benches = fast_benches();
        let materialised = Engine::new(EngineConfig {
            inclusion: hat_sfa::InclusionMode::Materialise,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        let otf_engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let onthefly = otf_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&materialised), verdicts(&onthefly));
        for (m, o) in materialised.benchmarks.iter().zip(&onthefly.benchmarks) {
            assert!(
                o.dfa_transitions() <= m.dfa_transitions(),
                "{}/{}: the walk derived more transitions than the complete builds",
                m.adt,
                m.library
            );
            assert_eq!(
                m.product_states(),
                0,
                "materialised runs must not report product states"
            );
        }
        let total_product: usize = onthefly.benchmarks.iter().map(|b| b.product_states()).sum();
        assert!(total_product > 0, "no benchmark exercised the product walk");
        // A second pass over the same benchmarks is answered from the memo hierarchy
        // (inclusion-verdict hits shadow shape hits for α-equal whole checks).
        let warm = otf_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&onthefly), verdicts(&warm));
        assert!(
            otf_engine.cache().stats().hits > 0,
            "the warm pass must hit the shared cache"
        );
    }

    #[test]
    fn submissions_stream_reports_and_reuse_the_pool() {
        let benches = fast_benches();
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        // First submission: consume the stream by hand and count every report.
        let mut handle = engine.submit(&benches);
        let expected_jobs: usize = benches.iter().map(|b| b.methods.len()).sum();
        assert_eq!(handle.job_count(), expected_jobs);
        let mut seen = vec![0usize; benches.len()];
        while let Some(job) = handle.next_report() {
            assert!(job.method < benches[job.bench].methods.len());
            seen[job.bench] += 1;
        }
        for (bench, &count) in benches.iter().zip(&seen) {
            assert_eq!(
                count,
                bench.methods.len(),
                "{}/{}",
                bench.adt,
                bench.library
            );
        }
        let first = handle.finish();
        // Second submission against the *same* engine: the persistent pool (and its
        // per-worker local tiers) serve it warm, with identical verdicts.
        let second = engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&first), verdicts(&second));
        assert!(second.cache.hits > 0, "the pool must stay warm across runs");
    }

    #[test]
    fn concurrent_submissions_do_not_crosstalk() {
        let benches = fast_benches();
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
        .expect("in-memory engine");
        let baseline = Engine::new(EngineConfig::default())
            .expect("in-memory engine")
            .check_benchmarks(&benches);
        // Two batches in flight at once on one pool — the daemon's concurrent-client
        // shape. Each handle must see exactly its own reports.
        let (first, second) = std::thread::scope(|scope| {
            let a = scope.spawn(|| engine.check_benchmarks(&benches[..1]));
            let b = scope.spawn(|| engine.check_benchmarks(&benches[1..]));
            (a.join().expect("first run"), b.join().expect("second run"))
        });
        assert_eq!(verdicts(&first), verdicts(&baseline)[..1].to_vec());
        assert_eq!(verdicts(&second), verdicts(&baseline)[1..].to_vec());
        assert_eq!(
            first.benchmarks[0].reports.len(),
            benches[0].methods.len(),
            "a handle must receive every report of its own submission"
        );
    }

    #[test]
    fn disk_log_carries_verdicts_across_engines() {
        let mut path = std::env::temp_dir();
        path.push(format!("hat-engine-sched-{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let benches = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
        let cold = Engine::new(EngineConfig {
            jobs: 2,
            cache_path: Some(path.clone()),
            ..EngineConfig::default()
        })
        .expect("disk-backed engine")
        .check_benchmarks(&benches);
        let warm_engine = Engine::new(EngineConfig {
            jobs: 2,
            cache_path: Some(path.clone()),
            ..EngineConfig::default()
        })
        .expect("disk-backed engine");
        assert!(warm_engine.cache().stats().disk_loaded > 0);
        let warm = warm_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&cold), verdicts(&warm));
        assert!(warm.cache.hits > 0);
        let _ = std::fs::remove_file(&path);
    }
}
