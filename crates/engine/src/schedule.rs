//! The parallel verification scheduler.
//!
//! A verification run is a work-queue of (benchmark, method) jobs drained by `jobs` worker
//! threads. Each worker owns its solver (wrapped in a [`CachingOracle`]) and a lock-free
//! [`LocalTier`], and shares the run-wide [`MemoStore`], so work one method discharges is
//! available to every other method — across workers and, with a disk log, across runs.
//! Reports are written into
//! pre-allocated slots keyed by (benchmark, method) index, so aggregation is deterministic
//! regardless of completion order; verdicts themselves are order-independent because every
//! cached verdict is a pure function of its canonical key.

use crate::cache::{CacheStatsSnapshot, MemoStore};
use crate::oracle::CachingOracle;
use crate::tier::LocalTier;
use hat_core::{Checker, MethodReport};
use hat_sfa::{EnumerationMode, InclusionMode};
use hat_suite::Benchmark;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a verification run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (1 = sequential).
    pub jobs: usize,
    /// Path of the persistent cache log; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Minterm enumeration strategy (incremental by default; naive is kept for
    /// differential testing and paper-faithful measurement).
    pub enumeration: EnumerationMode,
    /// Whether per-group alphabet pruning runs before DFA product construction (on by
    /// default; the unpruned path is kept for differential testing and measurement —
    /// both paths are verdict- and state-count-identical).
    pub prune: bool,
    /// How each per-group inclusion problem is decided (on-the-fly product walk by
    /// default; the materialising DFA-pair path is kept for differential testing and
    /// measurement — both paths are verdict-identical).
    pub inclusion: InclusionMode,
    /// Whether each worker fronts the shared store with a lock-free local read-through
    /// tier (on by default; the shared-only path is kept as the lock-traffic measurement
    /// baseline — verdicts are identical because every memo value is a pure function of
    /// its key).
    pub local_tiers: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            cache_path: None,
            enumeration: EnumerationMode::default(),
            prune: true,
            inclusion: InclusionMode::default(),
            local_tiers: true,
        }
    }
}

/// The verification results of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// ADT name.
    pub adt: String,
    /// Backing library name.
    pub library: String,
    /// One report per method, in method order.
    pub reports: Vec<MethodReport>,
    /// Summed per-method verification time (CPU-side; wall clock shrinks with `jobs`).
    pub check_time: Duration,
}

impl BenchmarkRun {
    /// Whether every method matched its expected verdict.
    pub fn all_as_expected(&self, bench: &Benchmark) -> bool {
        bench
            .methods
            .iter()
            .zip(&self.reports)
            .all(|(m, r)| r.verified == m.expect_verified)
    }

    /// Total SMT queries issued by this benchmark's methods.
    pub fn sat_queries(&self) -> usize {
        self.reports.iter().map(|r| r.stats.sat_queries).sum()
    }

    /// Total cache hits recorded by this benchmark's methods.
    pub fn cache_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.cache_hits).sum()
    }

    /// Total cache misses (queries that reached a solver).
    pub fn cache_misses(&self) -> usize {
        self.reports.iter().map(|r| r.stats.cache_misses).sum()
    }

    /// Total incremental enumeration checks issued by this benchmark's methods.
    pub fn enum_queries(&self) -> usize {
        self.reports.iter().map(|r| r.stats.enum_queries).sum()
    }

    /// Total pruned enumeration subtrees across this benchmark's methods.
    pub fn pruned_subtrees(&self) -> usize {
        self.reports.iter().map(|r| r.stats.pruned_subtrees).sum()
    }

    /// Total alphabet transformations answered from the minterm-set memo.
    pub fn minterm_memo_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.minterm_memo_hits).sum()
    }

    /// Total inclusion checks answered from the inclusion-verdict memo.
    pub fn inclusion_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.inclusion_memo_hits)
            .sum()
    }

    /// Total DFA states constructed by this benchmark's methods.
    pub fn dfa_states(&self) -> usize {
        self.reports.iter().map(|r| r.stats.dfa_states).sum()
    }

    /// Total DFA transitions constructed by this benchmark's methods.
    pub fn dfa_transitions(&self) -> usize {
        self.reports.iter().map(|r| r.stats.dfa_transitions).sum()
    }

    /// Total alphabet symbols dropped by per-group pruning.
    pub fn alphabet_pruned(&self) -> usize {
        self.reports.iter().map(|r| r.stats.alphabet_pruned).sum()
    }

    /// Total DFA transitions answered from the transition memo.
    pub fn transition_memo_hits(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.stats.transition_memo_hits)
            .sum()
    }

    /// Total product states discovered by on-the-fly inclusion walks.
    pub fn product_states(&self) -> usize {
        self.reports.iter().map(|r| r.stats.product_states).sum()
    }

    /// Total per-group product walks answered from the DFA-shape memo.
    pub fn shape_memo_hits(&self) -> usize {
        self.reports.iter().map(|r| r.stats.shape_memo_hits).sum()
    }

    /// Total shared-tier shard-lock acquisitions by this benchmark's methods. With
    /// local read-through tiers enabled, repeat lookups are absorbed lock-free and this
    /// number drops while hit counts stay.
    pub fn shared_tier_locks(&self) -> usize {
        self.reports.iter().map(|r| r.stats.shared_tier_locks).sum()
    }

    /// Total solver work: standalone SMT queries plus incremental enumeration checks.
    /// This is the number to compare across enumeration modes (naive enumeration issues
    /// standalone queries; incremental enumeration issues scoped checks).
    pub fn total_solver_work(&self) -> usize {
        self.sat_queries() + self.enum_queries()
    }
}

/// The outcome of a whole run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-benchmark results, in input order.
    pub benchmarks: Vec<BenchmarkRun>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cache counters accumulated during this run (deltas, not lifetime totals).
    pub cache: CacheStatsSnapshot,
}

/// The parallel verification engine: a worker pool plus the shared memo store.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: Arc<MemoStore>,
}

impl Engine {
    /// Creates an engine, loading the persistent cache when one is configured.
    pub fn new(config: EngineConfig) -> std::io::Result<Self> {
        let cache = match &config.cache_path {
            Some(path) => Arc::new(MemoStore::with_disk_log(path)?),
            None => Arc::new(MemoStore::in_memory()),
        };
        Ok(Engine { config, cache })
    }

    /// The shared memo store (e.g. for reporting lifetime statistics).
    pub fn cache(&self) -> &Arc<MemoStore> {
        &self.cache
    }

    /// Verifies every method of every benchmark, fanning the (benchmark, method) jobs out
    /// over the configured number of workers.
    pub fn check_benchmarks(&self, benches: &[Benchmark]) -> RunSummary {
        let start = Instant::now();
        let stats_before = self.cache.stats();
        let jobs: Vec<(usize, usize)> = benches
            .iter()
            .enumerate()
            .flat_map(|(b, bench)| (0..bench.methods.len()).map(move |m| (b, m)))
            .collect();
        // One fingerprint per benchmark, not per method job: canonicalising the axiom set
        // is not free and every method of a benchmark shares it.
        let key_prefixes: Vec<String> = benches
            .iter()
            .map(|b| CachingOracle::key_prefix_for(&b.delta.axioms))
            .collect();
        let slots: Vec<Mutex<Option<MethodReport>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.config.jobs.max(1).min(jobs.len().max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One lock-free local tier per worker, shared by every oracle the
                    // worker creates: promotions made while checking one method serve
                    // every later method of the same worker without a shard lock.
                    let local = self
                        .config
                        .local_tiers
                        .then(|| Rc::new(LocalTier::default()));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(b, m)) = jobs.get(i) else { break };
                        let bench = &benches[b];
                        let method = &bench.methods[m];
                        let mut oracle = CachingOracle::with_key_prefix(
                            bench.delta.axioms.clone(),
                            Arc::clone(&self.cache),
                            key_prefixes[b].clone(),
                        );
                        if let Some(local) = &local {
                            oracle = oracle.with_local_tier(Rc::clone(local));
                        }
                        let mut checker =
                            Checker::with_oracle(bench.delta.clone(), Box::new(oracle));
                        checker.inclusion.enumeration = self.config.enumeration;
                        checker.inclusion.prune = self.config.prune;
                        checker.inclusion.mode = self.config.inclusion;
                        let report = checker
                            .check_method(&method.sig, &method.body)
                            .unwrap_or_else(|e| {
                                panic!(
                                    "checking {}::{} failed to run: {e}",
                                    bench.adt, method.sig.name
                                )
                            });
                        *slots[i].lock().expect("report slot poisoned") = Some(report);
                    }
                });
            }
        });

        let mut results: Vec<BenchmarkRun> = benches
            .iter()
            .map(|b| BenchmarkRun {
                adt: b.adt.to_string(),
                library: b.library.to_string(),
                reports: Vec::with_capacity(b.methods.len()),
                check_time: Duration::ZERO,
            })
            .collect();
        for (&(b, _), slot) in jobs.iter().zip(&slots) {
            let report = slot
                .lock()
                .expect("report slot poisoned")
                .take()
                .expect("every job ran");
            results[b].check_time += report.stats.total_time;
            results[b].reports.push(report);
        }

        self.cache.flush();
        let after = self.cache.stats();
        RunSummary {
            benchmarks: results,
            wall: start.elapsed(),
            cache: CacheStatsSnapshot {
                hits: after.hits - stats_before.hits,
                misses: after.misses - stats_before.misses,
                // Disk replay happens at engine construction, so these deltas are 0 for
                // every run; lifetime values live in `Engine::cache().stats()`.
                disk_loaded: after.disk_loaded - stats_before.disk_loaded,
                stale: after.stale - stats_before.stale,
                minterm_hits: after.minterm_hits - stats_before.minterm_hits,
                minterm_misses: after.minterm_misses - stats_before.minterm_misses,
                transition_hits: after.transition_hits - stats_before.transition_hits,
                transition_misses: after.transition_misses - stats_before.transition_misses,
                lock_acquisitions: after.lock_acquisitions - stats_before.lock_acquisitions,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_benches() -> Vec<Benchmark> {
        // Two small configurations keep this test quick even in debug builds.
        vec![
            hat_suite::find("ConnectedGraph", "Set").expect("configuration exists"),
            hat_suite::find("Stack", "LinkedList").expect("configuration exists"),
        ]
    }

    fn verdicts(summary: &RunSummary) -> Vec<Vec<bool>> {
        summary
            .benchmarks
            .iter()
            .map(|b| b.reports.iter().map(|r| r.verified).collect())
            .collect()
    }

    #[test]
    fn parallel_verdicts_match_sequential() {
        let benches = fast_benches();
        let sequential = Engine::new(EngineConfig::default())
            .expect("in-memory engine")
            .check_benchmarks(&benches);
        let parallel = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        assert_eq!(verdicts(&sequential), verdicts(&parallel));
        for (b, run) in benches.iter().zip(&sequential.benchmarks) {
            assert!(run.all_as_expected(b), "{}/{} regressed", b.adt, b.library);
        }
    }

    #[test]
    fn warm_cache_reduces_solver_work() {
        let benches = vec![hat_suite::find("ConnectedGraph", "Set").expect("configuration exists")];
        let engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let cold = engine.check_benchmarks(&benches);
        let warm = engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&cold), verdicts(&warm));
        assert!(warm.cache.hits > 0, "second run must hit the cache");
        assert!(
            warm.cache.misses < cold.cache.misses,
            "warm run should reach the solver less ({} vs {})",
            warm.cache.misses,
            cold.cache.misses
        );
    }

    #[test]
    fn pruned_and_memoised_construction_matches_the_unpruned_path() {
        let benches = fast_benches();
        let unpruned = Engine::new(EngineConfig {
            prune: false,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        let pruned_engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let pruned = pruned_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&unpruned), verdicts(&pruned));
        for (u, p) in unpruned.benchmarks.iter().zip(&pruned.benchmarks) {
            assert_eq!(
                u.dfa_states(),
                p.dfa_states(),
                "{}/{}: pruning changed the reachable DFA state set",
                u.adt,
                u.library
            );
            assert!(
                p.dfa_transitions() <= u.dfa_transitions(),
                "{}/{}: pruning produced more transitions",
                u.adt,
                u.library
            );
        }
        let total_pruned: usize = pruned.benchmarks.iter().map(|b| b.alphabet_pruned()).sum();
        assert!(total_pruned > 0, "no benchmark exercised the pruner");
        // The caching oracle memoises transitions run-wide: a second pass over the same
        // benchmarks must answer every derivative from the memo.
        let warm = pruned_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&pruned), verdicts(&warm));
        assert!(
            pruned_engine.cache().stats().transition_hits > 0,
            "structurally equal sub-automata must share memoised transitions"
        );
    }

    #[test]
    fn onthefly_inclusion_matches_the_materialised_path_and_shares_shapes() {
        let benches = fast_benches();
        let materialised = Engine::new(EngineConfig {
            inclusion: hat_sfa::InclusionMode::Materialise,
            ..EngineConfig::default()
        })
        .expect("in-memory engine")
        .check_benchmarks(&benches);
        let otf_engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
        let onthefly = otf_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&materialised), verdicts(&onthefly));
        for (m, o) in materialised.benchmarks.iter().zip(&onthefly.benchmarks) {
            assert!(
                o.dfa_transitions() <= m.dfa_transitions(),
                "{}/{}: the walk derived more transitions than the complete builds",
                m.adt,
                m.library
            );
            assert_eq!(
                m.product_states(),
                0,
                "materialised runs must not report product states"
            );
        }
        let total_product: usize = onthefly.benchmarks.iter().map(|b| b.product_states()).sum();
        assert!(total_product > 0, "no benchmark exercised the product walk");
        // A second pass over the same benchmarks is answered from the memo hierarchy
        // (inclusion-verdict hits shadow shape hits for α-equal whole checks).
        let warm = otf_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&onthefly), verdicts(&warm));
        assert!(
            otf_engine.cache().stats().hits > 0,
            "the warm pass must hit the shared cache"
        );
    }

    #[test]
    fn disk_log_carries_verdicts_across_engines() {
        let mut path = std::env::temp_dir();
        path.push(format!("hat-engine-sched-{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let benches = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
        let cold = Engine::new(EngineConfig {
            jobs: 2,
            cache_path: Some(path.clone()),
            ..EngineConfig::default()
        })
        .expect("disk-backed engine")
        .check_benchmarks(&benches);
        let warm_engine = Engine::new(EngineConfig {
            jobs: 2,
            cache_path: Some(path.clone()),
            ..EngineConfig::default()
        })
        .expect("disk-backed engine");
        assert!(warm_engine.cache().stats().disk_loaded > 0);
        let warm = warm_engine.check_benchmarks(&benches);
        assert_eq!(verdicts(&cold), verdicts(&warm));
        assert!(warm.cache.hits > 0);
        let _ = std::fs::remove_file(&path);
    }
}
