//! Compaction-semantics property test: compacting a disk log must be observationally
//! invisible to the checker. For a spread of real configurations, a cold disk-backed
//! run followed by `compact` followed by a warm run must (a) report bit-identical
//! verdicts, and (b) answer **every** solver query and alphabet transformation from the
//! compacted log — 0 misses, 0 enumeration checks — exactly like a warm run over the
//! uncompacted log.

use hat_engine::{Engine, EngineConfig, MemoStore, RunSummary};
use std::path::{Path, PathBuf};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hat-engine-compaction-{}-{name}",
        std::process::id()
    ));
    p
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut lock = path.to_path_buf().into_os_string();
    lock.push(".lock");
    let _ = std::fs::remove_file(PathBuf::from(lock));
    let _ = std::fs::remove_file(path.with_extension("compacting"));
    let _ = std::fs::remove_dir_all(hat_engine::lsm::segment_dir_for(path));
}

fn verdicts(summary: &RunSummary) -> Vec<Vec<bool>> {
    summary
        .benchmarks
        .iter()
        .map(|b| b.reports.iter().map(|r| r.verified).collect())
        .collect()
}

fn disk_run(path: &Path, jobs: usize, benches: &[hat_suite::Benchmark]) -> RunSummary {
    Engine::new(EngineConfig {
        jobs,
        cache_path: Some(path.to_path_buf()),
        ..EngineConfig::default()
    })
    .expect("disk-backed engine")
    .check_benchmarks(benches)
}

#[test]
fn warm_run_after_compact_reports_zero_solver_queries_and_identical_verdicts() {
    // Several distinct configurations (different libraries, different axiom sets), each
    // checked independently: a per-configuration property, not one lucky aggregate.
    for (i, name) in ["ConnectedGraph/Set", "Stack/LinkedList", "MinSet/KVStore"]
        .iter()
        .enumerate()
    {
        let (adt, lib) = name.split_once('/').unwrap();
        let benches = vec![hat_suite::find(adt, lib).expect("configuration exists")];
        let path = temp_path(&format!("prop-{i}"));
        cleanup(&path);

        let cold = disk_run(&path, 2, &benches);
        assert!(
            cold.cache.misses > 0,
            "{name}: the cold run must actually solve something"
        );

        // Compact between the cold and warm runs (a fresh store, as `marple cache
        // compact` would use), and remember the store shrank or stayed equal — it can
        // never grow: compaction writes a subset of the records. `bytes` sums the
        // manifest and every live segment file.
        let before = MemoStore::inspect(&path).expect("inspect").bytes;
        {
            let store = MemoStore::with_disk_log(&path).expect("reopen for compaction");
            let report = store.compact().expect("compaction runs");
            assert!(
                report.bytes_after <= before,
                "{name}: compaction must never grow the store ({} -> {})",
                before,
                report.bytes_after
            );
            assert_eq!(
                report.records_after,
                MemoStore::inspect(&path).expect("inspect").live(),
                "{name}: the compacted segments hold exactly the live records"
            );
        }
        assert_eq!(
            MemoStore::inspect(&path).expect("inspect").dead(),
            0,
            "{name}: no dead records survive compaction"
        );

        let warm = disk_run(&path, 2, &benches);
        assert_eq!(
            verdicts(&cold),
            verdicts(&warm),
            "{name}: verdicts must be bit-identical across compaction"
        );
        assert_eq!(
            warm.cache.misses, 0,
            "{name}: every solver query of the warm run must hit the compacted log"
        );
        let warm_enum: usize = warm.benchmarks.iter().map(|b| b.enum_queries()).sum();
        assert_eq!(
            warm_enum, 0,
            "{name}: minterm sets must replay from the compacted log (no enumeration)"
        );
        assert!(warm.cache.hits > 0, "{name}: the warm run hits the cache");
        cleanup(&path);
    }
}

#[test]
fn compaction_is_idempotent_on_a_clean_log() {
    let benches = vec![hat_suite::find("Stack", "LinkedList").expect("configuration exists")];
    let path = temp_path("idempotent");
    cleanup(&path);
    disk_run(&path, 1, &benches);
    let store = MemoStore::with_disk_log(&path).expect("reopen");
    let first = store.compact().expect("first pass");
    let second = store.compact().expect("second pass");
    assert_eq!(first.records_after, second.records_before);
    assert_eq!(second.records_before, second.records_after);
    assert_eq!(first.bytes_after, second.bytes_after);
    drop(store);
    cleanup(&path);
}
