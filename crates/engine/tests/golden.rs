//! Golden verdict snapshot: every feasible (benchmark, method) pair's checker verdict is
//! pinned in `tests/golden_verdicts.txt`, so a future solver or engine change cannot
//! silently flip a verdict. Lines where the checker's verdict does not match the suite's
//! expected verdict would be marked `DIVERGENT` — and the snapshot must contain **zero**
//! of them: the two historical divergences (Queue/LinkedList and Queue/Graph) were
//! repaired by fixing the FIFO invariant encodings (an any-successor guard through the
//! graph library, allocator freshness in `newnode`'s postcondition), and
//! `no_divergent_entries` keeps any new one from landing, even via a snapshot
//! regeneration.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test -p hat-engine --test golden`

use hat_engine::{Engine, EngineConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::OnceLock;

/// Both tests assert against one verification run: re-verifying all 18 feasible
/// configurations per test would double the binary's wall time for no added coverage.
fn snapshot() -> &'static str {
    static SNAPSHOT: OnceLock<String> = OnceLock::new();
    SNAPSHOT.get_or_init(render_snapshot)
}

fn render_snapshot() -> String {
    let benches: Vec<_> = hat_suite::all_benchmarks()
        .into_iter()
        .filter(|b| !b.slow)
        .collect();
    // One engine run with a shared in-memory cache: verdicts are identical to per-method
    // fresh checkers (every cached verdict is a pure function of its canonical key), and
    // cross-benchmark sharing keeps this test affordable.
    let engine = Engine::new(EngineConfig::default()).expect("in-memory engine");
    let summary = engine.check_benchmarks(&benches);

    let mut out = String::new();
    out.push_str("# Golden verdict snapshot — one line per feasible (benchmark, method) pair.\n");
    out.push_str(
        "# Format: <ADT>/<Library>::<method> expected=<bool> verdict=<bool> [DIVERGENT]\n",
    );
    out.push_str("# `slow` configurations (FileSystem/KVStore-class alphabets) are excluded.\n");
    for (bench, run) in benches.iter().zip(&summary.benchmarks) {
        for (m, r) in bench.methods.iter().zip(&run.reports) {
            let divergent = if r.verified == m.expect_verified {
                ""
            } else {
                " DIVERGENT"
            };
            writeln!(
                out,
                "{}/{}::{} expected={} verdict={}{}",
                bench.adt, bench.library, m.sig.name, m.expect_verified, r.verified, divergent
            )
            .expect("writing to a String cannot fail");
        }
    }
    out
}

/// Every checker verdict must match the suite's expected verdict: a `DIVERGENT` marker
/// is a bug in either the checker or a benchmark encoding, never an acceptable snapshot
/// state. (This also fires under `UPDATE_GOLDEN=1`, so a regeneration cannot pin one.)
#[test]
fn no_divergent_entries() {
    let divergent: Vec<&str> = snapshot()
        .lines()
        .filter(|l| l.ends_with("DIVERGENT"))
        .collect();
    assert!(
        divergent.is_empty(),
        "checker verdicts diverge from expected verdicts:\n{}",
        divergent.join("\n")
    );
}

#[test]
fn verdicts_match_the_golden_snapshot() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_verdicts.txt");
    let rendered = snapshot();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, rendered).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; regenerate with UPDATE_GOLDEN=1 cargo test -p hat-engine --test golden",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "checker verdicts changed; if intentional, regenerate the snapshot with \
         UPDATE_GOLDEN=1 cargo test -p hat-engine --test golden"
    );
}
