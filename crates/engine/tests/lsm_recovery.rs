//! Crash-recovery fuzz for the v6 LSM store.
//!
//! The flush and compaction protocols are tmp-file + `sync_all` + atomic-rename, so a
//! kill can only leave (a) stray tmp/orphan files next to an untouched manifest or
//! (b) a manifest naming segments that a later media fault tears. This suite simulates
//! both — plus gratuitous corruption *stronger* than any kill can produce (random
//! truncation and byte flips inside committed files) — and asserts the one invariant
//! that must survive anything: a damaged record **degrades to cold, never to a wrong
//! verdict**. Ground truth is a pure function of each key, so any `Some` answer can be
//! checked exactly; the golden suite then covers end-to-end verdict fidelity of a
//! reloaded store.
//!
//! Deterministic xorshift seeding (the shared `hat-testkit` stream), like the atomio
//! fuzz loops.

use hat_engine::lsm;
use hat_engine::MemoStore;
use hat_sfa::Sfa;
use hat_testkit::XorShift;
use std::path::{Path, PathBuf};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hat-engine-lsm-recovery-{}-{name}",
        std::process::id()
    ));
    p
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path.with_extension("compacting"));
    let mut lock = path.to_path_buf().into_os_string();
    lock.push(".lock");
    let _ = std::fs::remove_file(PathBuf::from(lock));
    let _ = std::fs::remove_dir_all(lsm::segment_dir_for(path));
}

const KEYS: usize = 24;

/// Ground truth: every record value is a pure function of its key index.
fn truth_sat(i: usize) -> bool {
    i.is_multiple_of(2)
}
fn truth_incl(i: usize) -> bool {
    i.is_multiple_of(3)
}
fn truth_tr(i: usize) -> Sfa {
    if i.is_multiple_of(8) {
        Sfa::Zero
    } else {
        Sfa::Epsilon
    }
}

fn populate(path: &Path) {
    let store = MemoStore::with_disk_log(path).expect("populate open");
    for i in 0..KEYS {
        store.insert(format!("sat|k{i}"), truth_sat(i));
        store.insert_inclusion(format!("incl|k{i}"), truth_incl(i));
        if i.is_multiple_of(4) {
            store.insert_transition(format!("tr|k{i}"), truth_tr(i));
        }
    }
}

/// Opens the store and checks every answer it still gives against ground truth.
/// Returns how many of the known keys survived. Panics on any wrong value — the
/// property no corruption may violate.
fn verify_no_wrong_answers(path: &Path) -> usize {
    let store = MemoStore::with_disk_log(path).expect("recovery open never errors");
    assert!(!store.degraded(), "no crash shape may leave the lock stuck");
    let mut present = 0;
    for i in 0..KEYS {
        if let Some(v) = store.lookup(&format!("sat|k{i}")) {
            assert_eq!(
                v,
                truth_sat(i),
                "sat|k{i}: torn data produced a wrong verdict"
            );
            present += 1;
        }
        if let Some(v) = store.lookup_inclusion(&format!("incl|k{i}")) {
            assert_eq!(
                v,
                truth_incl(i),
                "incl|k{i}: torn data produced a wrong verdict"
            );
            present += 1;
        }
        if !i.is_multiple_of(4) {
            continue;
        }
        if let Some(v) = store.lookup_transition(&format!("tr|k{i}")) {
            assert_eq!(
                v,
                truth_tr(i),
                "tr|k{i}: torn data produced a wrong successor"
            );
            present += 1;
        }
    }
    present
}

fn segment_files(path: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(lsm::segment_dir_for(path))
        .map(|entries| entries.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    files.sort();
    files
}

/// The fuzz loop: populate, crash in a random way, reload, check, repair-by-use.
#[test]
fn random_crash_shapes_degrade_to_cold_never_to_wrong_verdicts() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for round in 0..30 {
        let path = temp_path(&format!("fuzz-{round}"));
        cleanup(&path);
        populate(&path);
        let files = segment_files(&path);
        assert!(
            !files.is_empty(),
            "round {round}: populate must flush segments"
        );

        match rng.below(5) {
            // Kill during flush, before the manifest commit: a stray tmp next to a
            // committed store. The reopen must GC it and lose nothing.
            0 => {
                let dir = lsm::segment_dir_for(&path);
                std::fs::write(dir.join("S-p0-L0-99999999.seg.tmp"), "half a segment").unwrap();
            }
            // Kill during compaction, before the manifest rename: a stray
            // `.compacting` manifest image plus an orphan merged segment.
            1 => {
                std::fs::write(path.with_extension("compacting"), "torn manifest image").unwrap();
                let dir = lsm::segment_dir_for(&path);
                std::fs::write(
                    dir.join("S-p0-L7-99999998.seg"),
                    "hat-engine-segment v6\tS\t1\nS1\tsat|bogus\n",
                )
                .unwrap();
            }
            // Media fault: truncate a committed segment at a random byte.
            2 => {
                let victim = &files[rng.below(files.len() as u64) as usize];
                let data = std::fs::read(victim).unwrap();
                let cut = rng.below(data.len().max(1) as u64) as usize;
                std::fs::write(victim, &data[..cut]).unwrap();
            }
            // Media fault: flip bytes inside a committed segment.
            3 => {
                let victim = &files[rng.below(files.len() as u64) as usize];
                let mut data = std::fs::read(victim).unwrap();
                for _ in 0..3 {
                    let at = rng.below(data.len().max(1) as u64) as usize;
                    data[at] = data[at].wrapping_add(1 + rng.below(255) as u8);
                }
                std::fs::write(victim, &data).unwrap();
            }
            // Delete a committed segment outright.
            _ => {
                let victim = &files[rng.below(files.len() as u64) as usize];
                std::fs::remove_file(victim).unwrap();
            }
        }

        let present = verify_no_wrong_answers(&path);
        // Tmp/orphan-only crash shapes (cases 0 and 1) lose nothing; the destructive
        // faults lose at most the records of the damaged segment family.
        assert!(
            present > 0,
            "round {round}: a single damaged file must never empty the store"
        );

        // The store stays writable after recovery, and re-deriving the lost records
        // (what a real run would do on the cold misses) heals it completely.
        populate(&path);
        let healed = {
            let store = MemoStore::with_disk_log(&path).expect("healed open");
            (0..KEYS).all(|i| store.lookup(&format!("sat|k{i}")) == Some(truth_sat(i)))
        };
        assert!(
            healed,
            "round {round}: re-derivation must repopulate the segments"
        );
        cleanup(&path);
    }
}

/// A torn manifest (damaged in place — something no kill can produce, since manifest
/// updates are atomic renames) must still never yield a wrong verdict: unreadable
/// lines are dropped and their segments become unreferenced, i.e. cold.
#[test]
fn a_torn_manifest_degrades_its_segments_to_cold() {
    let mut rng = XorShift(0xdeadbeefcafef00d);
    for round in 0..10 {
        let path = temp_path(&format!("manifest-{round}"));
        cleanup(&path);
        populate(&path);
        let data = std::fs::read(&path).unwrap();
        let cut = (rng.below(data.len() as u64 - 1) + 1) as usize;
        std::fs::write(&path, &data[..cut]).unwrap();
        let store = MemoStore::with_disk_log(&path).expect("open after manifest damage");
        for i in 0..KEYS {
            if let Some(v) = store.lookup(&format!("sat|k{i}")) {
                assert_eq!(
                    v,
                    truth_sat(i),
                    "round {round}: wrong verdict after manifest tear"
                );
            }
        }
        drop(store);
        // Whatever the tear left, the next generation of the store must be clean.
        populate(&path);
        verify_no_wrong_answers(&path);
        cleanup(&path);
    }
}

/// The exact crash window of a compaction — outputs written, manifest rename pending —
/// leaves the pre-compaction manifest fully live: nothing may be lost and the stray
/// files must be collected on the next open.
#[test]
fn a_kill_between_compaction_write_and_rename_loses_nothing() {
    let path = temp_path("compaction-window");
    cleanup(&path);
    populate(&path);
    // Forge the crash artefacts.
    std::fs::write(path.with_extension("compacting"), "arbitrary bytes").unwrap();
    let dir = lsm::segment_dir_for(&path);
    std::fs::write(dir.join("I-p2-L9-99999997.seg"), "orphan").unwrap();

    let store = MemoStore::with_disk_log(&path).expect("reopen in the crash window");
    assert_eq!(
        store.stats().stale,
        0,
        "the committed manifest is untouched"
    );
    for i in 0..KEYS {
        assert_eq!(store.lookup(&format!("sat|k{i}")), Some(truth_sat(i)));
        assert_eq!(
            store.lookup_inclusion(&format!("incl|k{i}")),
            Some(truth_incl(i))
        );
    }
    drop(store);
    assert!(
        !dir.join("I-p2-L9-99999997.seg").exists(),
        "the orphan of the interrupted compaction is collected under the writer lock"
    );
    cleanup(&path);
}

/// The committed v5 fixture (the exact bytes a pre-LSM binary wrote) must migrate to
/// v6 atomically on first open — every live record carried over, the duplicate
/// dropped, and the migrated store replaying cleanly forever after. CI runs the same
/// fixture through the `marple` binary.
#[test]
fn committed_v5_fixture_migrates_atomically() {
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v5.cache");
    let path = temp_path("v5-fixture");
    cleanup(&path);
    std::fs::copy(&fixture, &path).expect("fixture copies");
    {
        let store = MemoStore::with_disk_log(&path).expect("fixture opens");
        assert_eq!(store.lookup("sat|fixture-a"), Some(true));
        assert_eq!(store.lookup("sat|fixture-b"), Some(false));
        assert_eq!(store.lookup_inclusion("incl|fixture-c"), Some(true));
        assert_eq!(store.lookup_shape("shape|fixture-d"), Some(false));
        assert!(store.lookup_minterms("mt|fixture-e").is_some());
        assert_eq!(
            store.stats().disk_loaded,
            5,
            "one duplicate S record is dropped"
        );
    }
    let stats = MemoStore::inspect(&path).expect("inspect migrated store");
    assert_eq!(
        stats.version,
        Some(6),
        "the fixture is rewritten as a v6 manifest"
    );
    assert_eq!(stats.live(), 5);
    assert_eq!(stats.dead(), 0, "migration writes only the live records");
    let warm = MemoStore::with_disk_log(&path).expect("migrated store reopens");
    assert_eq!(warm.lookup("sat|fixture-a"), Some(true));
    assert_eq!(warm.stats().stale, 0);
    cleanup(&path);
}
