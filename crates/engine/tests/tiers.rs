//! Coherence and lock-traffic tests for the per-worker read-through tiers.
//!
//! Read-through caching is only sound because every memo value is a pure function of
//! its canonical key — a local copy can be absent, never stale. These tests assert the
//! observable consequences: at `jobs=6`, local-tier promotion changes **no verdict**
//! relative to a shared-only run or a sequential (`jobs=1`) run, while shared-tier
//! shard-lock traffic drops.

use hat_engine::{Engine, EngineConfig, MemoTier, RunSummary};
use hat_suite::Benchmark;

/// A handful of real configurations, small enough for debug-mode CI but covering
/// several libraries (distinct axiom sets, so the axiom-fingerprint discipline is
/// exercised across workers too).
fn benches() -> Vec<Benchmark> {
    ["ConnectedGraph/Set", "Stack/LinkedList", "MinSet/KVStore"]
        .iter()
        .map(|name| {
            let (adt, lib) = name.split_once('/').unwrap();
            hat_suite::find(adt, lib).expect("configuration exists")
        })
        .collect()
}

fn verdicts(summary: &RunSummary) -> Vec<Vec<bool>> {
    summary
        .benchmarks
        .iter()
        .map(|b| b.reports.iter().map(|r| r.verified).collect())
        .collect()
}

fn run(jobs: usize, local_tiers: bool) -> RunSummary {
    Engine::new(EngineConfig {
        jobs,
        local_tiers,
        ..EngineConfig::default()
    })
    .expect("in-memory engine")
    .check_benchmarks(&benches())
}

#[test]
fn jobs6_local_tier_promotion_never_changes_a_verdict() {
    let sequential = run(1, false);
    let shared_only = run(6, false);
    let read_through = run(6, true);
    assert_eq!(
        verdicts(&sequential),
        verdicts(&shared_only),
        "jobs=6 shared-only must match jobs=1"
    );
    assert_eq!(
        verdicts(&sequential),
        verdicts(&read_through),
        "jobs=6 with local-tier promotion must match jobs=1"
    );
    for (bench, run) in benches().iter().zip(&read_through.benchmarks) {
        assert!(
            run.all_as_expected(bench),
            "{}/{} regressed under read-through tiers",
            bench.adt,
            bench.library
        );
    }
}

#[test]
fn jobs6_read_through_tiers_cut_shared_lock_traffic() {
    let shared_only = run(6, false);
    let read_through = run(6, true);
    let shared_locks: usize = shared_only
        .benchmarks
        .iter()
        .map(|b| b.shared_tier_locks())
        .sum();
    let tiered_locks: usize = read_through
        .benchmarks
        .iter()
        .map(|b| b.shared_tier_locks())
        .sum();
    assert!(shared_locks > 0, "the shared-only run must count its locks");
    // On this deliberately tiny suite each worker sees only a couple of methods, so
    // most lookups are a worker's *first* sight of a key (which must go shared once in
    // any design); assert a strict reduction here and leave the ≥5× claim to the
    // default-suite measurement (`lock_reduction` in BENCH_engine.json), where
    // cross-method repetition dominates.
    assert!(
        tiered_locks * 4 <= shared_locks * 3,
        "local tiers should absorb a meaningful share of the shard-lock traffic even \
         on this small suite (got {tiered_locks} vs {shared_locks})"
    );
    // The per-run snapshot agrees with the per-method counters on magnitude: local
    // promotion, not fewer hits, is where the reduction comes from.
    assert!(
        read_through.cache.hits >= shared_only.cache.hits / 2,
        "read-through must not trade hits away ({} vs {})",
        read_through.cache.hits,
        shared_only.cache.hits
    );
    assert!(
        read_through.cache.lock_acquisitions < shared_only.cache.lock_acquisitions,
        "the store-side lock counter must drop too ({} vs {})",
        read_through.cache.lock_acquisitions,
        shared_only.cache.lock_acquisitions
    );
}

#[test]
fn sequential_runs_also_benefit_from_the_local_tier() {
    // One worker, many methods: the worker's local tier persists across its jobs, so
    // repeat lookups of invariant-level entries stay lock-free.
    let shared_only = run(1, false);
    let read_through = run(1, true);
    assert_eq!(verdicts(&shared_only), verdicts(&read_through));
    assert!(
        read_through.cache.lock_acquisitions < shared_only.cache.lock_acquisitions,
        "a single worker's repeat lookups should be absorbed locally ({} vs {})",
        read_through.cache.lock_acquisitions,
        shared_only.cache.lock_acquisitions
    );
}

/// The v6 acceptance bar for the LSM backend: memtable rotation, background flush and
/// background compaction all run on the dedicated LSM thread and never acquire a
/// memo-tier lock. A worker pays disk-tier locks only for its own probes and
/// promotions, so two sequential cold runs — one that never rotates, one that rotates
/// and compacts constantly — must count *identical* disk-tier lock traffic.
#[test]
fn background_flush_and_compaction_take_no_tier_locks() {
    let cleanup = |p: &std::path::Path| {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(p.with_extension("compacting"));
        let mut lock = p.to_path_buf().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(std::path::PathBuf::from(lock));
        let _ = std::fs::remove_dir_all(hat_engine::lsm::segment_dir_for(p));
    };
    let config_for = |name: &str, memtable: usize| {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "hat-engine-tiers-lsm-{name}-{}",
            std::process::id()
        ));
        cleanup(&path);
        EngineConfig {
            jobs: 1, // sequential, so the two cold probe sequences are identical
            cache_path: Some(path.clone()),
            memtable_bytes: Some(memtable),
            ..EngineConfig::default()
        }
    };

    // Baseline: a memtable the run can never fill — zero rotations, one drain flush.
    let quiet_config = config_for("quiet", 1 << 30);
    let quiet_engine = Engine::new(quiet_config.clone()).expect("disk-backed engine");
    let quiet = quiet_engine.check_benchmarks(&benches());
    assert!(
        quiet_engine
            .cache()
            .lsm_stats()
            .expect("persistent store")
            .rotations
            <= 1,
        "the huge memtable must absorb the whole run: only the end-of-run drain rotates"
    );
    let quiet_disk_locks = quiet_engine.cache().stats().disk_lock_acquisitions;
    drop(quiet_engine);

    // Same workload over a toy memtable: constant rotation, flushing and merging on
    // the background thread while the worker runs.
    let busy_config = config_for("busy", 512);
    let busy_engine = Engine::new(busy_config.clone()).expect("disk-backed engine");
    let busy = busy_engine.check_benchmarks(&benches());
    let lsm = busy_engine.cache().lsm_stats().expect("persistent store");
    assert!(lsm.rotations > 0, "the toy memtable must rotate mid-run");
    assert!(lsm.flushes > 0, "rotated tables must reach segment files");
    assert!(
        lsm.compactions > 0,
        "enough flushes must trigger background merges (got {})",
        lsm.flushes
    );
    assert_eq!(verdicts(&quiet), verdicts(&busy));
    assert_eq!(
        busy_engine.cache().stats().disk_lock_acquisitions,
        quiet_disk_locks,
        "{} flushes and {} compactions ran in the background, yet the worker observed \
         exactly the disk-tier lock traffic of the rotation-free run — flush and \
         compaction never go through the tiers",
        lsm.flushes,
        lsm.compactions
    );
    drop(busy_engine);

    // Warm restart over the rotated-and-compacted segments: identical verdicts,
    // nothing re-solved, and the only disk-tier traffic is the workers' own
    // read-through promotions.
    let warm_engine = Engine::new(EngineConfig {
        jobs: 4,
        ..busy_config.clone()
    })
    .expect("warm disk-backed engine");
    let warm = warm_engine.check_benchmarks(&benches());
    assert_eq!(
        verdicts(&busy),
        verdicts(&warm),
        "verdicts must be bit-identical across rotation and background compaction"
    );
    assert_eq!(
        warm.cache.misses, 0,
        "every solver query of the warm run must be served from the segments"
    );
    assert_eq!(
        warm.cache.transition_misses, 0,
        "no transition successor is re-derived on a warm run"
    );
    // The outer memo levels (inclusion, shape) hit first on a warm run and skip the
    // product walk, so transitions are rarely *consulted* — assert instead that the
    // transition segments really did replay into the shared tier at open.
    assert!(
        warm_engine.cache().transition_tier().len() > 0,
        "transition successors must be served from their own segment kind on disk"
    );
    assert!(
        warm_engine.cache().stats().disk_lock_acquisitions > 0,
        "warm lookups pay their own promotion locks — that is the only disk-tier traffic"
    );
    drop(warm_engine);
    cleanup(quiet_config.cache_path.as_ref().unwrap());
    cleanup(busy_config.cache_path.as_ref().unwrap());
}
