//! Coherence and lock-traffic tests for the per-worker read-through tiers.
//!
//! Read-through caching is only sound because every memo value is a pure function of
//! its canonical key — a local copy can be absent, never stale. These tests assert the
//! observable consequences: at `jobs=6`, local-tier promotion changes **no verdict**
//! relative to a shared-only run or a sequential (`jobs=1`) run, while shared-tier
//! shard-lock traffic drops.

use hat_engine::{Engine, EngineConfig, RunSummary};
use hat_suite::Benchmark;

/// A handful of real configurations, small enough for debug-mode CI but covering
/// several libraries (distinct axiom sets, so the axiom-fingerprint discipline is
/// exercised across workers too).
fn benches() -> Vec<Benchmark> {
    ["ConnectedGraph/Set", "Stack/LinkedList", "MinSet/KVStore"]
        .iter()
        .map(|name| {
            let (adt, lib) = name.split_once('/').unwrap();
            hat_suite::find(adt, lib).expect("configuration exists")
        })
        .collect()
}

fn verdicts(summary: &RunSummary) -> Vec<Vec<bool>> {
    summary
        .benchmarks
        .iter()
        .map(|b| b.reports.iter().map(|r| r.verified).collect())
        .collect()
}

fn run(jobs: usize, local_tiers: bool) -> RunSummary {
    Engine::new(EngineConfig {
        jobs,
        local_tiers,
        ..EngineConfig::default()
    })
    .expect("in-memory engine")
    .check_benchmarks(&benches())
}

#[test]
fn jobs6_local_tier_promotion_never_changes_a_verdict() {
    let sequential = run(1, false);
    let shared_only = run(6, false);
    let read_through = run(6, true);
    assert_eq!(
        verdicts(&sequential),
        verdicts(&shared_only),
        "jobs=6 shared-only must match jobs=1"
    );
    assert_eq!(
        verdicts(&sequential),
        verdicts(&read_through),
        "jobs=6 with local-tier promotion must match jobs=1"
    );
    for (bench, run) in benches().iter().zip(&read_through.benchmarks) {
        assert!(
            run.all_as_expected(bench),
            "{}/{} regressed under read-through tiers",
            bench.adt,
            bench.library
        );
    }
}

#[test]
fn jobs6_read_through_tiers_cut_shared_lock_traffic() {
    let shared_only = run(6, false);
    let read_through = run(6, true);
    let shared_locks: usize = shared_only
        .benchmarks
        .iter()
        .map(|b| b.shared_tier_locks())
        .sum();
    let tiered_locks: usize = read_through
        .benchmarks
        .iter()
        .map(|b| b.shared_tier_locks())
        .sum();
    assert!(shared_locks > 0, "the shared-only run must count its locks");
    // On this deliberately tiny suite each worker sees only a couple of methods, so
    // most lookups are a worker's *first* sight of a key (which must go shared once in
    // any design); assert a strict reduction here and leave the ≥5× claim to the
    // default-suite measurement (`lock_reduction` in BENCH_engine.json), where
    // cross-method repetition dominates.
    assert!(
        tiered_locks * 4 <= shared_locks * 3,
        "local tiers should absorb a meaningful share of the shard-lock traffic even \
         on this small suite (got {tiered_locks} vs {shared_locks})"
    );
    // The per-run snapshot agrees with the per-method counters on magnitude: local
    // promotion, not fewer hits, is where the reduction comes from.
    assert!(
        read_through.cache.hits >= shared_only.cache.hits / 2,
        "read-through must not trade hits away ({} vs {})",
        read_through.cache.hits,
        shared_only.cache.hits
    );
    assert!(
        read_through.cache.lock_acquisitions < shared_only.cache.lock_acquisitions,
        "the store-side lock counter must drop too ({} vs {})",
        read_through.cache.lock_acquisitions,
        shared_only.cache.lock_acquisitions
    );
}

#[test]
fn sequential_runs_also_benefit_from_the_local_tier() {
    // One worker, many methods: the worker's local tier persists across its jobs, so
    // repeat lookups of invariant-level entries stay lock-free.
    let shared_only = run(1, false);
    let read_through = run(1, true);
    assert_eq!(verdicts(&shared_only), verdicts(&read_through));
    assert!(
        read_through.cache.lock_acquisitions < shared_only.cache.lock_acquisitions,
        "a single worker's repeat lookups should be absorbed locally ({} vs {})",
        read_through.cache.lock_acquisitions,
        shared_only.cache.lock_acquisitions
    );
}
