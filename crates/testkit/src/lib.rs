//! # hat-testkit
//!
//! Shared deterministic test support. The build environment is offline, so the
//! randomised harnesses across the workspace (the `sfa/tests/` differentials, the LSM
//! crash-recovery fuzz, the interpreter replay tests, and the `hat-gen` config
//! generator) cannot pull in a property-testing crate. They all use the same tiny
//! xorshift64 stream instead, so that **one printed seed reproduces any failure** in any
//! harness, and a tweak to the generator state machine cannot silently fork the streams
//! apart.
//!
//! The draw order is part of the contract: harnesses pin fixed seeds to streams
//! produced in exactly this order, and `hat-gen` names every generated configuration
//! after its `(seed, index)` pair.

/// The deterministic xorshift64 generator shared by every randomised harness in the
/// workspace.
///
/// The state is public so tests can embed literal seeds; a zero seed is nudged to a
/// fixed non-zero constant (xorshift has a fixed point at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift(pub u64);

impl XorShift {
    /// A generator seeded with `seed` (a zero seed is remapped to a non-zero constant).
    pub fn seeded(seed: u64) -> Self {
        if seed == 0 {
            XorShift(0x9e3779b97f4a7c15)
        } else {
            XorShift(seed)
        }
    }

    /// The next value of the stream. (Named like the pre-extraction copies; the
    /// generator is deliberately not an `Iterator` — the stream is infinite and every
    /// call site wants the raw `u64`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A fair-enough coin flip.
    pub fn flip(&mut self) -> bool {
        self.below(2) == 0
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_stream_is_the_pinned_xorshift64_sequence() {
        // Reference transcription of the pre-extraction RNG copies: the sfa differential
        // harnesses pinned their seeds against exactly this 13/7/17 stream.
        fn reference(mut x: u64) -> u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
        for seed in [1u64, 42, 0x9e3779b97f4a7c15, 0xdeadbeefcafef00d] {
            let mut rng = XorShift(seed);
            let mut s = seed;
            for _ in 0..32 {
                s = reference(s);
                assert_eq!(rng.next(), s);
            }
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift::seeded(0);
        assert_ne!(z.next(), 0);
        assert_eq!(XorShift::seeded(7).0, 7);
    }

    #[test]
    fn below_and_flip_are_deterministic() {
        let mut a = XorShift(42);
        let mut b = XorShift(42);
        for _ in 0..100 {
            assert_eq!(a.below(17), b.below(17));
        }
        let mut c = XorShift(42);
        let _ = c.next();
        assert_ne!(a.0, 42);
        let _ = (a.flip(), c.flip());
    }

    #[test]
    fn pick_covers_the_slice() {
        let mut rng = XorShift(3);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(*rng.pick(&items));
        }
        assert_eq!(seen.len(), items.len());
    }
}
