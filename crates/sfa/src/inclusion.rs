//! Symbolic-automaton language inclusion (paper §5.1, Algorithm 1).
//!
//! `Γ ⊢ A ⊆ B` holds when, under every closing substitution of the typing context `Γ`,
//! every trace accepted by `A` is accepted by `B`. The check follows the paper:
//!
//! 1. collect the literals of `Γ`, `A` and `B` and build the satisfiable minterms
//!    (SMT queries — the `#SAT` column of the evaluation);
//! 2. for every valuation of the *context* literals (the outer loop over `φ_Γ`),
//!    translate both automata to classical DFAs over the minterm alphabet
//!    (alphabet transformation, Algorithm 2) and
//! 3. check DFA language inclusion by product construction
//!    (the `#FA⊆` column of the evaluation).

use crate::ast::{OpSig, Sfa, SymbolicEvent};
use crate::dfa::{Dfa, DfaBuildError, TransitionOracle};
use crate::minterm::{
    arg_name, build_minterms_with, res_name, EnumerationMode, LiteralPool, Minterm, MintermSet,
};
use hat_logic::{Atom, Formula, Ident, ScopedSession, Sort};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The logical part of a typing context: in-scope variables with their sorts, and the
/// facts (refinement qualifiers) known about them.
#[derive(Debug, Clone, Default)]
pub struct VarCtx {
    /// Variables in scope (function parameters, ghost variables, let-bound values).
    pub vars: Vec<(Ident, Sort)>,
    /// Facts known about those variables.
    pub facts: Vec<Formula>,
}

impl VarCtx {
    /// Creates a context.
    pub fn new(vars: Vec<(Ident, Sort)>, facts: Vec<Formula>) -> Self {
        VarCtx { vars, facts }
    }

    /// Adds a variable binding.
    pub fn push_var(&mut self, name: impl Into<Ident>, sort: Sort) {
        self.vars.push((name.into(), sort));
    }

    /// Adds a fact.
    pub fn push_fact(&mut self, fact: Formula) {
        self.facts.push(fact);
    }
}

/// The SMT interface needed by minterm construction and transition resolution.
/// Implemented by [`hat_logic::Solver`]; wrappers can intercept calls to collect statistics.
pub trait SolverOracle {
    /// Is the conjunction of `facts` satisfiable, with `vars` as free constants?
    fn is_sat(&mut self, vars: &[(Ident, Sort)], facts: &[Formula]) -> bool;
    /// Does the conjunction of `facts` entail `goal`?
    fn entails(&mut self, vars: &[(Ident, Sort)], facts: &[Formula], goal: &Formula) -> bool;
    /// Number of SMT queries issued so far (for the `#SAT` column).
    fn query_count(&self) -> usize;
    /// Total time spent answering queries (for the `t_SAT` column).
    fn query_time(&self) -> Duration;
    /// Number of queries answered from a shared result cache (0 for an uncached solver).
    fn cache_hits(&self) -> usize {
        0
    }
    /// Number of queries that reached the underlying decision procedure.
    fn cache_misses(&self) -> usize {
        self.query_count()
    }

    /// Opens an incremental scoped-assumption session over the underlying solver, used
    /// by incremental minterm enumeration. `None` (the default) makes enumeration fall
    /// back to one standalone query per assignment-tree node.
    fn scoped_session<'a>(
        &'a mut self,
        vars: &[(Ident, Sort)],
        base: &[Formula],
        literals: &[Atom],
    ) -> Option<ScopedSession<'a>> {
        let _ = (vars, base, literals);
        None
    }

    /// Looks up a memoised minterm set for a structurally equal alphabet transformation —
    /// same context, operators and literal pool up to α-renaming (and, for caching
    /// oracles, the same background axioms). The oracle is responsible for renaming the
    /// stored set back into this query's variable names. `None` (the default) disables
    /// minterm-set memoisation.
    fn minterm_lookup(
        &mut self,
        ctx: &VarCtx,
        ops: &[OpSig],
        pool: &LiteralPool,
    ) -> Option<MintermSet> {
        let _ = (ctx, ops, pool);
        None
    }

    /// Memoises an enumerated minterm set for later [`SolverOracle::minterm_lookup`]s.
    fn minterm_store(&mut self, ctx: &VarCtx, ops: &[OpSig], pool: &LiteralPool, set: &MintermSet) {
        let _ = (ctx, ops, pool, set);
    }

    /// A memo key identifying a whole automata-inclusion check up to α-equivalence.
    /// `None` (the default) disables inclusion-verdict memoisation.
    fn inclusion_key(
        &mut self,
        ctx: &VarCtx,
        ops: &[OpSig],
        max_states: usize,
        a: &Sfa,
        b: &Sfa,
    ) -> Option<String> {
        let _ = (ctx, ops, max_states, a, b);
        None
    }

    /// Looks a memoised inclusion verdict up by the key from
    /// [`SolverOracle::inclusion_key`].
    fn inclusion_lookup(&mut self, key: &str) -> Option<bool> {
        let _ = key;
        None
    }

    /// Memoises an inclusion verdict under the given key.
    fn inclusion_store(&mut self, key: &str, verdict: bool) {
        let _ = (key, verdict);
    }
}

impl SolverOracle for hat_logic::Solver {
    fn is_sat(&mut self, vars: &[(Ident, Sort)], facts: &[Formula]) -> bool {
        self.is_satisfiable(vars, &Formula::and(facts.to_vec()))
    }

    fn entails(&mut self, vars: &[(Ident, Sort)], facts: &[Formula], goal: &Formula) -> bool {
        hat_logic::Solver::entails(self, vars, facts, goal)
    }

    fn query_count(&self) -> usize {
        self.stats.queries
    }

    fn query_time(&self) -> Duration {
        self.stats.time
    }

    fn scoped_session<'a>(
        &'a mut self,
        vars: &[(Ident, Sort)],
        base: &[Formula],
        literals: &[Atom],
    ) -> Option<ScopedSession<'a>> {
        Some(self.scoped(vars, base, literals))
    }
}

/// Work counters for inclusion checking, matching the evaluation columns of the paper.
#[derive(Debug, Clone, Default)]
pub struct InclusionStats {
    /// Number of automaton-pair inclusion checks performed (`#FA⊆`).
    pub fa_inclusions: usize,
    /// Number of DFAs constructed.
    pub dfas_built: usize,
    /// Total number of transitions across constructed DFAs (for `avg. s_FA`).
    pub fa_transitions: usize,
    /// Total number of states across constructed DFAs.
    pub fa_states: usize,
    /// Number of satisfiable minterms constructed.
    pub minterms: usize,
    /// Number of incremental enumeration checks issued during minterm construction
    /// (0 when enumeration runs naively; those queries show up in the oracle's count).
    pub enum_queries: usize,
    /// Number of unsatisfiable enumeration branches abandoned (pruned subtrees).
    pub pruned_subtrees: usize,
    /// Number of alphabet transformations answered from the minterm-set memo.
    pub minterm_memo_hits: usize,
    /// Number of whole inclusion checks answered from the inclusion-verdict memo.
    pub inclusion_memo_hits: usize,
    /// Total wall-clock time spent inside inclusion checking (includes solver time).
    pub time: Duration,
}

impl InclusionStats {
    /// Average number of transitions per constructed DFA (the paper's `avg. s_FA`).
    pub fn avg_fa_size(&self) -> f64 {
        if self.dfas_built == 0 {
            0.0
        } else {
            self.fa_transitions as f64 / self.dfas_built as f64
        }
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &InclusionStats) {
        self.fa_inclusions += other.fa_inclusions;
        self.dfas_built += other.dfas_built;
        self.fa_transitions += other.fa_transitions;
        self.fa_states += other.fa_states;
        self.minterms += other.minterms;
        self.enum_queries += other.enum_queries;
        self.pruned_subtrees += other.pruned_subtrees;
        self.minterm_memo_hits += other.minterm_memo_hits;
        self.inclusion_memo_hits += other.inclusion_memo_hits;
        self.time += other.time;
    }
}

/// Resolves DFA transitions by SMT entailment, with caching.
struct MatchOracle<'a> {
    ctx: &'a VarCtx,
    ops: &'a [OpSig],
    oracle: &'a mut dyn SolverOracle,
    event_cache: BTreeMap<(SymbolicEvent, Minterm), bool>,
    guard_cache: BTreeMap<(Formula, Minterm), bool>,
}

impl<'a> MatchOracle<'a> {
    fn event_vars(&self, op: &str) -> Vec<(Ident, Sort)> {
        let mut vars = self.ctx.vars.clone();
        if let Some(sig) = self.ops.iter().find(|o| o.name == op) {
            for (i, (_, sort)) in sig.args.iter().enumerate() {
                vars.push((arg_name(i), sort.clone()));
            }
            vars.push((res_name(), sig.ret.clone()));
        }
        vars
    }
}

impl TransitionOracle for MatchOracle<'_> {
    fn event_matches(&mut self, e: &SymbolicEvent, m: &Minterm) -> bool {
        if e.op != m.op {
            return false;
        }
        let key = (e.clone(), m.clone());
        if let Some(&v) = self.event_cache.get(&key) {
            return v;
        }
        let renamed = e.phi.rename_free_vars(&|v: &str| {
            if v == e.result {
                Some(res_name())
            } else {
                e.args.iter().position(|x| x == v).map(arg_name)
            }
        });
        let mut facts = self.ctx.facts.clone();
        facts.push(m.formula());
        let vars = self.event_vars(&m.op);
        let result = self.oracle.entails(&vars, &facts, &renamed);
        self.event_cache.insert(key, result);
        result
    }

    fn guard_holds(&mut self, phi: &Formula, m: &Minterm) -> bool {
        let key = (phi.clone(), m.clone());
        if let Some(&v) = self.guard_cache.get(&key) {
            return v;
        }
        let mut facts = self.ctx.facts.clone();
        facts.push(m.formula());
        let vars = self.event_vars(&m.op);
        let result = self.oracle.entails(&vars, &facts, phi);
        self.guard_cache.insert(key, result);
        result
    }
}

/// The symbolic-automaton inclusion checker.
///
/// It is parameterised by the alphabet of effectful operators in scope (the library API)
/// and a bound on the number of DFA states.
#[derive(Debug, Clone)]
pub struct InclusionChecker {
    /// Signatures of every effectful operator that may appear in traces.
    pub ops: Vec<OpSig>,
    /// Bound on the number of DFA states per automaton.
    pub max_states: usize,
    /// How minterm satisfiability is established during alphabet transformation.
    pub enumeration: EnumerationMode,
    /// Accumulated statistics.
    pub stats: InclusionStats,
}

impl InclusionChecker {
    /// Creates a checker for the given operator alphabet.
    pub fn new(ops: Vec<OpSig>) -> Self {
        InclusionChecker {
            ops,
            max_states: 8192,
            enumeration: EnumerationMode::default(),
            stats: InclusionStats::default(),
        }
    }

    /// Checks `Γ ⊢ A ⊆ B`.
    pub fn check(
        &mut self,
        ctx: &VarCtx,
        a: &Sfa,
        b: &Sfa,
        oracle: &mut dyn SolverOracle,
    ) -> Result<bool, DfaBuildError> {
        let start = Instant::now();
        let result = self.check_inner(ctx, a, b, oracle);
        self.stats.time += start.elapsed();
        result
    }

    fn check_inner(
        &mut self,
        ctx: &VarCtx,
        a: &Sfa,
        b: &Sfa,
        oracle: &mut dyn SolverOracle,
    ) -> Result<bool, DfaBuildError> {
        // Trivial cases avoid minterm construction entirely.
        if a == b || matches!(a, Sfa::Zero) || b.is_universe() {
            return Ok(true);
        }
        // Structurally equal inclusion checks (same context, operators and automata up to
        // α-renaming) skip minterm construction and DFA building entirely.
        let memo_key = oracle.inclusion_key(ctx, &self.ops, self.max_states, a, b);
        if let Some(key) = &memo_key {
            if let Some(verdict) = oracle.inclusion_lookup(key) {
                self.stats.inclusion_memo_hits += 1;
                return Ok(verdict);
            }
        }
        let set = build_minterms_with(ctx, &self.ops, &[a, b], oracle, self.enumeration);
        self.stats.minterms += set.minterms.len();
        self.stats.enum_queries += set.enum_queries;
        self.stats.pruned_subtrees += set.pruned;
        if set.from_memo {
            self.stats.minterm_memo_hits += 1;
        }
        let mut matcher = MatchOracle {
            ctx,
            ops: &self.ops,
            oracle,
            event_cache: BTreeMap::new(),
            guard_cache: BTreeMap::new(),
        };
        let mut verdict = true;
        for group in set.uniform_groups() {
            let alphabet: Vec<Minterm> = set
                .group_indices(&group)
                .into_iter()
                .map(|i| set.minterms[i].clone())
                .collect();
            let da = Dfa::build(a, &alphabet, &mut matcher, self.max_states)?;
            let db = Dfa::build(b, &alphabet, &mut matcher, self.max_states)?;
            self.stats.dfas_built += 2;
            self.stats.fa_states += da.num_states() + db.num_states();
            self.stats.fa_transitions += da.num_transitions() + db.num_transitions();
            self.stats.fa_inclusions += 1;
            if da.included_in(&db).is_err() {
                verdict = false;
                break;
            }
        }
        if let Some(key) = memo_key {
            matcher.oracle.inclusion_store(&key, verdict);
        }
        Ok(verdict)
    }
}

/// Helpers shared by this crate's unit tests.
#[cfg(test)]
pub mod tests_support {
    /// In tests the "oracle" is simply the real solver.
    pub type PlainOracle = hat_logic::Solver;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Solver, Term};

    fn set_ops() -> Vec<OpSig> {
        vec![
            OpSig::new("insert", vec![("x".into(), Sort::Int)], Sort::Unit),
            OpSig::new("mem", vec![("x".into(), Sort::Int)], Sort::Bool),
        ]
    }

    fn ins_el() -> Sfa {
        Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        )
    }

    /// I_Set(el): once el is inserted it is never inserted again.
    fn uniqueness_invariant() -> Sfa {
        Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ))
    }

    fn ctx_el() -> VarCtx {
        VarCtx::new(vec![("el".into(), Sort::Int)], vec![])
    }

    #[test]
    fn reflexivity_and_trivial_cases() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let inv = uniqueness_invariant();
        assert!(checker.check(&ctx_el(), &inv, &inv, &mut solver).unwrap());
        assert!(checker
            .check(&ctx_el(), &Sfa::Zero, &inv, &mut solver)
            .unwrap());
        assert!(checker
            .check(&ctx_el(), &inv, &Sfa::universe(), &mut solver)
            .unwrap());
    }

    #[test]
    fn strictly_smaller_language_is_included() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let never = Sfa::globally(Sfa::not(ins_el()));
        let at_most_once = uniqueness_invariant();
        assert!(checker
            .check(&ctx_el(), &never, &at_most_once, &mut solver)
            .unwrap());
        assert!(!checker
            .check(&ctx_el(), &at_most_once, &never, &mut solver)
            .unwrap());
        assert!(checker.stats.fa_inclusions >= 2);
        assert!(checker.stats.minterms >= 2);
        assert!(solver.stats.queries > 0);
    }

    #[test]
    fn insert_preserves_uniqueness_only_when_not_present() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let inv = uniqueness_invariant();
        // Context automaton: invariant holds and el has never been inserted.
        let ctx_auto = Sfa::and(vec![inv.clone(), Sfa::not(Sfa::eventually(ins_el()))]);
        // After appending a single insert of el, the invariant must still hold:
        //   (ctx; ⟨insert el⟩ ∧ LAST) ⊆ I
        let post = Sfa::concat(ctx_auto, Sfa::and(vec![ins_el(), Sfa::last()]));
        assert!(checker.check(&ctx_el(), &post, &inv, &mut solver).unwrap());

        // Without the "not present" assumption the insertion may duplicate el:
        let bad_post = Sfa::concat(inv.clone(), Sfa::and(vec![ins_el(), Sfa::last()]));
        assert!(!checker
            .check(&ctx_el(), &bad_post, &inv, &mut solver)
            .unwrap());
    }

    #[test]
    fn guard_disjunct_splits_into_uniform_groups() {
        // A = □⟨isRoot(p)⟩ ∨ □¬⟨put key _ = v | key = p⟩ is included in itself but not in
        // □¬⟨put key _ = v | key = p⟩ alone (the root case allows puts of p).
        let kv_ops = vec![OpSig::new(
            "put",
            vec![
                ("key".into(), Sort::named("Path.t")),
                ("val".into(), Sort::named("Bytes.t")),
            ],
            Sort::Unit,
        )];
        let put_p = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::eq(Term::var("key"), Term::var("p")),
        );
        let root_guard = Sfa::globally(Sfa::guard(Formula::pred("isRoot", vec![Term::var("p")])));
        let no_put_p = Sfa::globally(Sfa::not(put_p));
        let a = Sfa::or(vec![root_guard, no_put_p.clone()]);
        let ctx = VarCtx::new(vec![("p".into(), Sort::named("Path.t"))], vec![]);
        let mut checker = InclusionChecker::new(kv_ops);
        let mut solver = Solver::default();
        assert!(checker.check(&ctx, &a, &a, &mut solver).unwrap());
        assert!(!checker.check(&ctx, &a, &no_put_p, &mut solver).unwrap());
        // With the context fact isRoot(p), A collapses to the universe, so inclusion in
        // the no-put automaton still fails...
        let ctx_root = VarCtx::new(
            vec![("p".into(), Sort::named("Path.t"))],
            vec![Formula::pred("isRoot", vec![Term::var("p")])],
        );
        assert!(!checker
            .check(&ctx_root, &a, &no_put_p, &mut solver)
            .unwrap());
        // ...but inclusion of the no-put automaton in A succeeds trivially under that fact.
        assert!(checker
            .check(&ctx_root, &no_put_p, &a, &mut solver)
            .unwrap());
    }

    #[test]
    fn context_facts_prune_impossible_events() {
        // Under the fact el < 0, an insert with argument 0 can never be the element el.
        let ops = set_ops();
        let insert_zero = Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::int(0)),
        );
        let not_ins_el = Sfa::globally(Sfa::not(ins_el()));
        let only_zero = Sfa::globally(Sfa::or(vec![Sfa::not(Sfa::any_event()), insert_zero]));
        let ctx = VarCtx::new(
            vec![("el".into(), Sort::Int)],
            vec![Formula::lt(Term::var("el"), Term::int(0))],
        );
        let mut checker = InclusionChecker::new(ops);
        let mut solver = Solver::default();
        // Every trace of inserts of 0 never inserts el (because el < 0 ≠ 0).
        assert!(checker
            .check(&ctx, &only_zero, &not_ins_el, &mut solver)
            .unwrap());
        // Without the context fact the inclusion must fail (el could be 0).
        let ctx_plain = ctx_el();
        assert!(!checker
            .check(&ctx_plain, &only_zero, &not_ins_el, &mut solver)
            .unwrap());
    }

    #[test]
    fn stats_accumulate() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let inv = uniqueness_invariant();
        let never = Sfa::globally(Sfa::not(ins_el()));
        let _ = checker.check(&ctx_el(), &never, &inv, &mut solver).unwrap();
        assert!(checker.stats.dfas_built >= 2);
        assert!(checker.stats.fa_transitions > 0);
        assert!(checker.stats.avg_fa_size() > 0.0);
        let mut other = InclusionStats::default();
        other.merge(&checker.stats);
        assert_eq!(other.fa_inclusions, checker.stats.fa_inclusions);
    }
}
