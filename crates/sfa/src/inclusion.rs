//! Symbolic-automaton language inclusion (paper §5.1, Algorithm 1).
//!
//! `Γ ⊢ A ⊆ B` holds when, under every closing substitution of the typing context `Γ`,
//! every trace accepted by `A` is accepted by `B`. The check follows the paper:
//!
//! 1. collect the literals of `Γ`, `A` and `B` and build the satisfiable minterms
//!    (SMT queries — the `#SAT` column of the evaluation);
//! 2. for every valuation of the *context* literals (the outer loop over `φ_Γ`),
//!    translate both automata to classical automata over the minterm alphabet
//!    (alphabet transformation, Algorithm 2) and
//! 3. decide language inclusion over that alphabet (the `#FA⊆` column of the
//!    evaluation), in one of two ways selected by [`InclusionMode`]:
//!
//! * **On the fly** (the default): emptiness of the product `A × complement(det(B))`,
//!   walked pair by pair without materialising either DFA
//!   ([`crate::dfa::product_included`]). Transition rows are derived only for residual
//!   states the product frontier reaches, and the walk returns at the first accepting
//!   product state — a counterexample word — so failing checks touch a fraction of the
//!   state space.
//! * **Materialised** (the paper-faithful baseline, kept behind a flag for differential
//!   testing and measurement): build both complete DFAs with [`Dfa::build`], then BFS
//!   their product with [`Dfa::included_in`].
//!
//! On top of either pipeline, oracles can *memoise per-group product walks by shape*
//! ([`MemoQuery::Shape`]): the α-renamed (automaton pair, pruned alphabet) fully
//! determines the walk's verdict — transitions are resolved propositionally from minterm
//! assignments that are part of the key — so α-equal shapes skip the walk entirely, even
//! across different typing contexts and benchmarks.
//!
//! # Example
//!
//! ```
//! use hat_logic::{Formula, Solver, Sort, Term};
//! use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};
//!
//! // ⟨insert x = v | x = el⟩ under a context binding el.
//! let ins_el = Sfa::event("insert", vec!["x".into()], "v",
//!     Formula::eq(Term::var("x"), Term::var("el")));
//! let never = Sfa::globally(Sfa::not(ins_el.clone()));
//! let at_most_once = Sfa::globally(Sfa::implies(
//!     ins_el.clone(),
//!     Sfa::next(Sfa::not(Sfa::eventually(ins_el))),
//! ));
//! let ops = vec![OpSig::new("insert", vec![("x".into(), Sort::Int)], Sort::Unit)];
//! let ctx = VarCtx::new(vec![("el".into(), Sort::Int)], vec![]);
//! let mut checker = InclusionChecker::new(ops);
//! let mut solver = Solver::default();
//! assert!(checker.check(&ctx, &never, &at_most_once, &mut solver).unwrap());
//! assert!(!checker.check(&ctx, &at_most_once, &never, &mut solver).unwrap());
//! ```

use crate::ast::{OpSig, Sfa, SymbolicEvent};
use crate::dfa::{product_included_with, Dfa, DfaBuildError, TransitionOracle};
use crate::minterm::{
    arg_name, build_minterms_with, res_name, EnumerationMode, LiteralPool, Minterm, MintermSet,
};
use crate::subsume::SubsumptionMode;
use hat_logic::{Atom, Formula, Ident, ScopedSession, Sort};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The logical part of a typing context: in-scope variables with their sorts, and the
/// facts (refinement qualifiers) known about them.
#[derive(Debug, Clone, Default)]
pub struct VarCtx {
    /// Variables in scope (function parameters, ghost variables, let-bound values).
    pub vars: Vec<(Ident, Sort)>,
    /// Facts known about those variables.
    pub facts: Vec<Formula>,
}

impl VarCtx {
    /// Creates a context.
    pub fn new(vars: Vec<(Ident, Sort)>, facts: Vec<Formula>) -> Self {
        VarCtx { vars, facts }
    }

    /// Adds a variable binding.
    pub fn push_var(&mut self, name: impl Into<Ident>, sort: Sort) {
        self.vars.push((name.into(), sort));
    }

    /// Adds a fact.
    pub fn push_fact(&mut self, fact: Formula) {
        self.facts.push(fact);
    }
}

/// The record kinds of the memo hierarchy — every whole unit of work an oracle may
/// memoise above the raw solver-verdict cache (which is internal to oracle
/// implementations). Each kind corresponds to one [`MemoQuery`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoKind {
    /// A whole alphabet transformation (one enumerated [`MintermSet`]).
    Minterms,
    /// A whole automata-inclusion check `Γ ⊢ A ⊆ B`.
    Inclusion,
    /// One per-group product walk over an (automaton pair, pruned alphabet) shape.
    Shape,
    /// One Brzozowski derivative `state × answers → successor`.
    Transition,
    /// One simulation-subsumption verdict `L(a) ⊆ L(b)` between two residual states
    /// over a pruned group alphabet.
    Subsumption,
}

/// One memoisable unit of work, carrying everything an oracle needs to canonicalise its
/// key. The same value is passed to the paired [`SolverOracle::memo_store`], so oracles
/// can cache the canonicalisation of the preceding lookup miss instead of redoing it.
#[derive(Debug, Clone, Copy)]
pub enum MemoQuery<'a> {
    /// The alphabet transformation of `ctx`/`ops`/`pool` (answer:
    /// [`MemoAnswer::Minterms`]). Axiom-dependent: minterm satisfiability consults the
    /// background axioms.
    Minterms {
        /// The typing context the literals were collected under.
        ctx: &'a VarCtx,
        /// The operator alphabet.
        ops: &'a [OpSig],
        /// The collected literal pool.
        pool: &'a LiteralPool,
    },
    /// A whole inclusion check `Γ ⊢ A ⊆ B` (answer: [`MemoAnswer::Verdict`]).
    /// Axiom-dependent, like every solver verdict feeding it.
    Inclusion {
        /// The typing context `Γ`.
        ctx: &'a VarCtx,
        /// The operator alphabet.
        ops: &'a [OpSig],
        /// The DFA state bound the check ran under.
        max_states: usize,
        /// The included automaton.
        a: &'a Sfa,
        /// The including automaton.
        b: &'a Sfa,
    },
    /// One per-group product walk (answer: [`MemoAnswer::Verdict`]). Every transition of
    /// the walk is resolved propositionally from a minterm assignment and a qualifier
    /// that are both part of this data, so the verdict is a pure function of the
    /// α-renamed query: equal shapes share one verdict across contexts and benchmarks
    /// with different axiom sets. Callers only store when no context-dependent SMT
    /// fallback fired during the walk.
    Shape {
        /// The included automaton.
        a: &'a Sfa,
        /// The including automaton.
        b: &'a Sfa,
        /// The (pruned) group alphabet the walk ran over.
        alphabet: &'a [Minterm],
        /// The DFA state bound the walk ran under.
        max_states: usize,
    },
    /// One simulation-subsumption verdict (answer: [`MemoAnswer::Verdict`]): whether
    /// `L(a) ⊆ L(b)` over the pruned group alphabet, as certified (or definitely
    /// refuted) by the simulation fixpoint. Like [`MemoQuery::Shape`], the verdict is a
    /// semantic fact about the α-renamed (residual pair, alphabet) — transitions are
    /// resolved propositionally from minterm assignments that are part of the key — so
    /// it is shared across contexts and benchmarks with different axiom sets. Callers
    /// only store when no context-dependent SMT fallback fired.
    Subsumption {
        /// The smaller residual.
        a: &'a Sfa,
        /// The larger residual.
        b: &'a Sfa,
        /// The (pruned) group alphabet the order is relative to.
        alphabet: &'a [Minterm],
    },
    /// One DFA transition (answer: [`MemoAnswer::Transition`]). A Brzozowski successor
    /// is a pure syntactic function of the state formula and the signed answers for the
    /// symbolic events and guards occurring in it — axioms, context facts and the
    /// concrete minterm only enter through those answers — so the query carries exactly
    /// that data and the memo is shared across benchmarks with different axiom sets.
    /// Oracles must return the successor renamed back into the caller's variable names.
    Transition {
        /// The residual state being derived.
        state: &'a Sfa,
        /// The signed answer for every symbolic event occurring in `state`.
        events: &'a [(&'a SymbolicEvent, bool)],
        /// The signed answer for every guard occurring in `state`.
        guards: &'a [(&'a Formula, bool)],
    },
}

impl MemoQuery<'_> {
    /// The record kind this query belongs to.
    pub fn kind(&self) -> MemoKind {
        match self {
            MemoQuery::Minterms { .. } => MemoKind::Minterms,
            MemoQuery::Inclusion { .. } => MemoKind::Inclusion,
            MemoQuery::Shape { .. } => MemoKind::Shape,
            MemoQuery::Subsumption { .. } => MemoKind::Subsumption,
            MemoQuery::Transition { .. } => MemoKind::Transition,
        }
    }
}

/// The memoised answer for a [`MemoQuery`], in the shape its kind expects.
///
/// Values are [`Cow`]s so the hot store path pays no clone: callers pass freshly
/// computed results by reference (`Cow::Borrowed`), while lookups hand back owned
/// values (`Cow::Owned`, renamed into the query's variable names by the oracle).
#[derive(Debug, Clone)]
pub enum MemoAnswer<'a> {
    /// A boolean verdict ([`MemoKind::Inclusion`] and [`MemoKind::Shape`]).
    Verdict(bool),
    /// A whole minterm set ([`MemoKind::Minterms`]).
    Minterms(Cow<'a, MintermSet>),
    /// A successor automaton ([`MemoKind::Transition`]).
    Transition(Cow<'a, Sfa>),
}

impl MemoAnswer<'_> {
    /// The verdict bit, when this answer is one.
    pub fn verdict(&self) -> Option<bool> {
        match self {
            MemoAnswer::Verdict(v) => Some(*v),
            _ => None,
        }
    }
}

/// The SMT interface needed by minterm construction and transition resolution.
/// Implemented by [`hat_logic::Solver`]; wrappers can intercept calls to collect
/// statistics.
///
/// Beyond raw satisfiability, an oracle may memoise whole units of work through the
/// single typed memo interface ([`SolverOracle::memo_lookup`] /
/// [`SolverOracle::memo_store`], with [`SolverOracle::memoises`] as the capability
/// probe): one [`MemoQuery`] variant per record kind, uniformly for minterm sets,
/// inclusion verdicts, per-group shapes and DFA transitions. The defaults memoise
/// nothing.
pub trait SolverOracle {
    /// Is the conjunction of `facts` satisfiable, with `vars` as free constants?
    fn is_sat(&mut self, vars: &[(Ident, Sort)], facts: &[Formula]) -> bool;
    /// Does the conjunction of `facts` entail `goal`?
    fn entails(&mut self, vars: &[(Ident, Sort)], facts: &[Formula], goal: &Formula) -> bool;
    /// Number of SMT queries issued so far (for the `#SAT` column).
    fn query_count(&self) -> usize;
    /// Total time spent answering queries (for the `t_SAT` column).
    fn query_time(&self) -> Duration;
    /// Number of queries answered from a shared result cache (0 for an uncached solver).
    fn cache_hits(&self) -> usize {
        0
    }
    /// Number of queries that reached the underlying decision procedure.
    fn cache_misses(&self) -> usize {
        self.query_count()
    }
    /// Number of shared-tier lock acquisitions this oracle performed (0 for an oracle
    /// without a shared tiered store). Per-worker local read-through tiers exist to
    /// drive this number down; `CheckStats` reports it per method.
    fn shared_tier_locks(&self) -> usize {
        0
    }

    /// Opens an incremental scoped-assumption session over the underlying solver, used
    /// by incremental minterm enumeration. `None` (the default) makes enumeration fall
    /// back to one standalone query per assignment-tree node.
    fn scoped_session<'a>(
        &'a mut self,
        vars: &[(Ident, Sort)],
        base: &[Formula],
        literals: &[Atom],
    ) -> Option<ScopedSession<'a>> {
        let _ = (vars, base, literals);
        None
    }

    /// Whether this oracle can ever answer a [`SolverOracle::memo_lookup`] for the given
    /// record kind. Lets callers skip assembling a query — notably the signed answer
    /// signature of a [`MemoQuery::Transition`] — when the oracle memoises nothing.
    fn memoises(&self, kind: MemoKind) -> bool {
        let _ = kind;
        false
    }

    /// Looks a memoised unit of work up. Oracles are responsible for canonicalising the
    /// query into their key space (α-renaming, axiom fingerprints where the answer
    /// depends on axioms) and for renaming a stored value back into the query's variable
    /// names. `None` (the default) means "not memoised" — either a miss or an
    /// unsupported kind.
    fn memo_lookup(&mut self, query: &MemoQuery) -> Option<MemoAnswer<'static>> {
        let _ = query;
        None
    }

    /// Memoises a computed unit of work for later [`SolverOracle::memo_lookup`]s of a
    /// structurally equal query. Callers pair every store with a preceding lookup miss
    /// for the same query, so oracles may reuse the canonicalisation computed there.
    fn memo_store(&mut self, query: &MemoQuery, answer: &MemoAnswer) {
        let _ = (query, answer);
    }

    /// Publishes any batched memo writes (oracles with write-behind tiers). The checker
    /// calls this at the end of each method check, *before* harvesting the oracle's
    /// counters, so the publication cost is attributed to the method that incurred it.
    fn flush_memos(&mut self) {}
}

impl SolverOracle for hat_logic::Solver {
    fn is_sat(&mut self, vars: &[(Ident, Sort)], facts: &[Formula]) -> bool {
        self.is_satisfiable(vars, &Formula::and(facts.to_vec()))
    }

    fn entails(&mut self, vars: &[(Ident, Sort)], facts: &[Formula], goal: &Formula) -> bool {
        hat_logic::Solver::entails(self, vars, facts, goal)
    }

    fn query_count(&self) -> usize {
        self.stats.queries
    }

    fn query_time(&self) -> Duration {
        self.stats.time
    }

    fn scoped_session<'a>(
        &'a mut self,
        vars: &[(Ident, Sort)],
        base: &[Formula],
        literals: &[Atom],
    ) -> Option<ScopedSession<'a>> {
        Some(self.scoped(vars, base, literals))
    }
}

/// Work counters for inclusion checking, matching the evaluation columns of the paper.
#[derive(Debug, Clone, Default)]
pub struct InclusionStats {
    /// Number of automaton-pair inclusion checks performed (`#FA⊆`).
    pub fa_inclusions: usize,
    /// Number of DFAs constructed.
    pub dfas_built: usize,
    /// Total number of transitions across constructed DFAs (for `avg. s_FA`).
    pub fa_transitions: usize,
    /// Total number of states across constructed DFAs.
    pub fa_states: usize,
    /// Number of satisfiable minterms constructed.
    pub minterms: usize,
    /// Number of incremental enumeration checks issued during minterm construction
    /// (0 when enumeration runs naively; those queries show up in the oracle's count).
    pub enum_queries: usize,
    /// Number of unsatisfiable enumeration branches abandoned (pruned subtrees).
    pub pruned_subtrees: usize,
    /// Number of alphabet transformations answered from the minterm-set memo.
    pub minterm_memo_hits: usize,
    /// Number of whole inclusion checks answered from the inclusion-verdict memo.
    pub inclusion_memo_hits: usize,
    /// Number of alphabet symbols dropped by per-group pruning before product
    /// construction (minterms whose transition behaviour another symbol of the same
    /// group already exhibits).
    pub alphabet_pruned: usize,
    /// Number of DFA transitions answered from the run-wide transition memo instead of
    /// being derived.
    pub transition_memo_hits: usize,
    /// Number of distinct product states discovered by on-the-fly walks (0 when every
    /// group ran materialised). A failing walk stops at the first accepting pair, so
    /// this is the number to compare against `fa_states` for early-exit savings.
    pub product_states: usize,
    /// Number of per-group product walks answered from the shape memo instead of being
    /// walked.
    pub shape_memo_hits: usize,
    /// Number of candidate-pair × antichain-member subsumption comparisons performed by
    /// on-the-fly walks (0 under [`SubsumptionMode::Off`]).
    pub subsumption_checks: usize,
    /// Number of derived product pairs dropped because a visited pair subsumed them.
    pub subsumed_pairs: usize,
    /// Number of simulation-subsumption verdicts answered from the persistent memo.
    pub simulation_memo_hits: usize,
    /// Total wall-clock time spent inside inclusion checking (includes solver time).
    pub time: Duration,
}

impl InclusionStats {
    /// Average number of transitions per constructed DFA (the paper's `avg. s_FA`).
    pub fn avg_fa_size(&self) -> f64 {
        if self.dfas_built == 0 {
            0.0
        } else {
            self.fa_transitions as f64 / self.dfas_built as f64
        }
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &InclusionStats) {
        self.fa_inclusions += other.fa_inclusions;
        self.dfas_built += other.dfas_built;
        self.fa_transitions += other.fa_transitions;
        self.fa_states += other.fa_states;
        self.minterms += other.minterms;
        self.enum_queries += other.enum_queries;
        self.pruned_subtrees += other.pruned_subtrees;
        self.minterm_memo_hits += other.minterm_memo_hits;
        self.inclusion_memo_hits += other.inclusion_memo_hits;
        self.alphabet_pruned += other.alphabet_pruned;
        self.transition_memo_hits += other.transition_memo_hits;
        self.product_states += other.product_states;
        self.shape_memo_hits += other.shape_memo_hits;
        self.subsumption_checks += other.subsumption_checks;
        self.subsumed_pairs += other.subsumed_pairs;
        self.simulation_memo_hits += other.simulation_memo_hits;
        self.time += other.time;
    }
}

/// Resolves DFA transitions by SMT entailment, with caching.
struct MatchOracle<'a> {
    ctx: &'a VarCtx,
    ops: &'a [OpSig],
    oracle: &'a mut dyn SolverOracle,
    /// Keyed on (operator, canonically-renamed qualifier, minterm): event binder
    /// spellings never reach the entailment query, so they must not split the cache
    /// either (DFA states carry α-normalised binders, the original automata the
    /// user's).
    event_cache: BTreeMap<(String, Formula, Minterm), bool>,
    guard_cache: BTreeMap<(Formula, Minterm), bool>,
    /// The signature assembled by the last `derivative_lookup` miss. `Dfa::build` always
    /// pairs a miss with a `derivative_store` for the same transition, so the store
    /// reuses it instead of re-walking the state and re-probing the answer caches.
    pending_signature: Option<Signature>,
    /// Number of successors answered from the oracle's transition memo.
    memo_hits: usize,
    /// Number of answers that fell back to a context-dependent SMT entailment because
    /// `eval_under` found an atom outside the minterm's assignment. While this stays at
    /// zero a group's verdict is a pure function of its (automata, alphabet) shape, so
    /// it may be stored in the shape memo.
    fallback_queries: usize,
}

impl<'a> MatchOracle<'a> {
    fn new(ctx: &'a VarCtx, ops: &'a [OpSig], oracle: &'a mut dyn SolverOracle) -> Self {
        MatchOracle {
            ctx,
            ops,
            oracle,
            event_cache: BTreeMap::new(),
            guard_cache: BTreeMap::new(),
            pending_signature: None,
            memo_hits: 0,
            fallback_queries: 0,
        }
    }

    fn event_vars(&self, op: &str) -> Vec<(Ident, Sort)> {
        let mut vars = self.ctx.vars.clone();
        if let Some(sig) = self.ops.iter().find(|o| o.name == op) {
            for (i, (_, sort)) in sig.args.iter().enumerate() {
                vars.push((arg_name(i), sort.clone()));
            }
            vars.push((res_name(), sig.ret.clone()));
        }
        vars
    }

    /// The signed answers for every event and guard of `state` under `m` — the complete
    /// oracle data a derivative of `state` with respect to `m` can consult. The
    /// underlying entailment queries share the per-check caches with the derivative
    /// computation itself, so resolving the signature never duplicates solver work.
    fn answer_signature(&mut self, state: &Sfa, m: &Minterm) -> Signature {
        let mut events = Vec::new();
        let mut guards = Vec::new();
        state.collect_events_guards(&mut events, &mut guards);
        let events: Vec<(SymbolicEvent, bool)> = events
            .into_iter()
            .map(|e| {
                let e = e.clone();
                let ans = self.event_matches(&e, m);
                (e, ans)
            })
            .collect();
        let guards: Vec<(Formula, bool)> = guards
            .into_iter()
            .map(|phi| {
                let phi = phi.clone();
                let ans = self.guard_holds(&phi, m);
                (phi, ans)
            })
            .collect();
        Signature { events, guards }
    }
}

/// The signed event/guard answers of one minterm with respect to a pair of automata:
/// minterms with equal signatures are interchangeable alphabet symbols (they induce the
/// same successor on every residual state), so only one representative per signature has
/// to survive into product construction.
struct Signature {
    events: Vec<(SymbolicEvent, bool)>,
    guards: Vec<(Formula, bool)>,
}

impl Signature {
    fn event_refs(&self) -> Vec<(&SymbolicEvent, bool)> {
        self.events.iter().map(|(e, b)| (e, *b)).collect()
    }

    fn guard_refs(&self) -> Vec<(&Formula, bool)> {
        self.guards.iter().map(|(phi, b)| (phi, *b)).collect()
    }
}

impl TransitionOracle for MatchOracle<'_> {
    fn event_matches(&mut self, e: &SymbolicEvent, m: &Minterm) -> bool {
        if e.op != m.op {
            return false;
        }
        let renamed = e.phi.rename_free_vars(&|v: &str| {
            if v == e.result {
                Some(res_name())
            } else {
                e.args.iter().position(|x| x == v).map(arg_name)
            }
        });
        // A minterm is a complete truth assignment over the literal pool, and the pool
        // collected every atom of this (canonically renamed) qualifier, so the entailment
        // `Γ ∧ m ⊨ φ` is decided by evaluating φ under the assignment: if φ evaluates
        // true it is entailed propositionally; if false, any model of the (satisfiable)
        // minterm falsifies it. No SMT query is needed — the solver fallback only fires
        // for qualifiers with atoms from outside the pool.
        if let Some(v) = eval_under(&renamed, &m.assignment) {
            return v;
        }
        // Context-dependent answer: the verdict is no longer a pure function of the
        // (automata, alphabet) shape, so the surrounding group must not be shape-stored.
        self.fallback_queries += 1;
        let key = (e.op.clone(), renamed, m.clone());
        if let Some(&v) = self.event_cache.get(&key) {
            return v;
        }
        let mut facts = self.ctx.facts.clone();
        facts.push(m.formula());
        let vars = self.event_vars(&m.op);
        let result = self.oracle.entails(&vars, &facts, &key.1);
        self.event_cache.insert(key, result);
        result
    }

    fn guard_holds(&mut self, phi: &Formula, m: &Minterm) -> bool {
        // Guards mention only context variables; their atoms are uniform literals of the
        // pool, all assigned by the minterm (see `event_matches`).
        if let Some(v) = eval_under(phi, &m.assignment) {
            return v;
        }
        self.fallback_queries += 1;
        let key = (phi.clone(), m.clone());
        if let Some(&v) = self.guard_cache.get(&key) {
            return v;
        }
        let mut facts = self.ctx.facts.clone();
        facts.push(m.formula());
        let vars = self.event_vars(&m.op);
        let result = self.oracle.entails(&vars, &facts, phi);
        self.guard_cache.insert(key, result);
        result
    }

    fn derivative_lookup(&mut self, state: &Sfa, m: &Minterm) -> Option<Sfa> {
        if !self.oracle.memoises(MemoKind::Transition) {
            return None;
        }
        let sig = self.answer_signature(state, m);
        let events = sig.event_refs();
        let guards = sig.guard_refs();
        let query = MemoQuery::Transition {
            state,
            events: &events,
            guards: &guards,
        };
        let found = match self.oracle.memo_lookup(&query) {
            Some(MemoAnswer::Transition(succ)) => Some(succ.into_owned()),
            _ => None,
        };
        if found.is_some() {
            self.memo_hits += 1;
        }
        self.pending_signature = found.is_none().then_some(sig);
        found
    }

    fn derivative_store(&mut self, state: &Sfa, m: &Minterm, succ: &Sfa) {
        if !self.oracle.memoises(MemoKind::Transition) {
            return;
        }
        // The paired lookup (a miss) left its signature behind; recompute (from the
        // per-check answer caches it filled) only if the pairing was broken by an
        // unexpected call sequence.
        let sig = self
            .pending_signature
            .take()
            .unwrap_or_else(|| self.answer_signature(state, m));
        let events = sig.event_refs();
        let guards = sig.guard_refs();
        let query = MemoQuery::Transition {
            state,
            events: &events,
            guards: &guards,
        };
        self.oracle
            .memo_store(&query, &MemoAnswer::Transition(Cow::Borrowed(succ)));
    }

    fn subsumption_lookup(&mut self, a: &Sfa, b: &Sfa, alphabet: &[Minterm]) -> Option<bool> {
        if !self.oracle.memoises(MemoKind::Subsumption) {
            return None;
        }
        let query = MemoQuery::Subsumption { a, b, alphabet };
        self.oracle
            .memo_lookup(&query)
            .and_then(|ans| ans.verdict())
    }

    fn subsumption_store(&mut self, a: &Sfa, b: &Sfa, alphabet: &[Minterm], verdict: bool) {
        if !self.oracle.memoises(MemoKind::Subsumption) {
            return;
        }
        // The `shape_key` purity discipline: an SMT fallback anywhere in this check
        // means transition rows may have consulted the typing context behind the key's
        // back, so nothing computed from them is a pure function of its key.
        if self.fallback_queries > 0 {
            return;
        }
        let query = MemoQuery::Subsumption { a, b, alphabet };
        self.oracle
            .memo_store(&query, &MemoAnswer::Verdict(verdict));
    }
}

/// How each per-group language-inclusion problem over the minterm alphabet is decided.
///
/// Whenever both pipelines complete they return the same verdict (they explore the same
/// reachable product pairs). The one asymmetry is the DFA state bound: an early
/// counterexample can let the on-the-fly walk decide an instance whose materialised
/// pipeline would abort with [`DfaBuildError::TooManyStates`] — the verdict is still
/// correct (the counterexample word exists regardless of the bound). The converse cannot
/// happen: the walk only discovers residual states the complete builds also contain, so
/// if the walk exceeds the bound, materialisation would too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InclusionMode {
    /// On-the-fly emptiness of `A × complement(det(B))`: derive transition rows only for
    /// residual states the product frontier reaches, exit at the first accepting product
    /// state. Never materialises either DFA.
    #[default]
    OnTheFly,
    /// Build both complete DFAs, then BFS their product (the paper-faithful baseline,
    /// kept for differential testing and measurement).
    Materialise,
}

/// The symbolic-automaton inclusion checker.
///
/// It is parameterised by the alphabet of effectful operators in scope (the library API)
/// and a bound on the number of DFA states.
#[derive(Debug, Clone)]
pub struct InclusionChecker {
    /// Signatures of every effectful operator that may appear in traces.
    pub ops: Vec<OpSig>,
    /// Bound on the number of DFA states per automaton.
    pub max_states: usize,
    /// How minterm satisfiability is established during alphabet transformation.
    pub enumeration: EnumerationMode,
    /// Whether per-group alphabet pruning runs before product construction (on by
    /// default; the unpruned path is kept for differential testing and measurement).
    /// Pruning collapses alphabet symbols with identical transition behaviour — e.g.
    /// the one-minterm families of operators referenced by neither automaton — and is
    /// verdict- and state-count-preserving.
    pub prune: bool,
    /// How each per-group inclusion problem is decided (on-the-fly product walk by
    /// default; the materialising path is kept for differential testing and
    /// measurement).
    pub mode: InclusionMode,
    /// How the on-the-fly walk prunes its frontier (antichain subsumption, see
    /// [`crate::subsume`]; simulation by default, verdict-identical in every mode).
    /// Ignored by [`InclusionMode::Materialise`], which is the unpruned baseline.
    pub subsume: SubsumptionMode,
    /// Accumulated statistics.
    pub stats: InclusionStats,
}

impl InclusionChecker {
    /// Creates a checker for the given operator alphabet.
    pub fn new(ops: Vec<OpSig>) -> Self {
        InclusionChecker {
            ops,
            max_states: 8192,
            enumeration: EnumerationMode::default(),
            prune: true,
            mode: InclusionMode::default(),
            subsume: SubsumptionMode::default(),
            stats: InclusionStats::default(),
        }
    }

    /// Checks `Γ ⊢ A ⊆ B`.
    pub fn check(
        &mut self,
        ctx: &VarCtx,
        a: &Sfa,
        b: &Sfa,
        oracle: &mut dyn SolverOracle,
    ) -> Result<bool, DfaBuildError> {
        let start = Instant::now();
        let result = self.check_inner(ctx, a, b, oracle);
        self.stats.time += start.elapsed();
        result
    }

    fn check_inner(
        &mut self,
        ctx: &VarCtx,
        a: &Sfa,
        b: &Sfa,
        oracle: &mut dyn SolverOracle,
    ) -> Result<bool, DfaBuildError> {
        // Trivial cases avoid minterm construction entirely.
        if a == b || matches!(a, Sfa::Zero) || b.is_universe() {
            return Ok(true);
        }
        // Structurally equal inclusion checks (same context, operators and automata up to
        // α-renaming) skip minterm construction and DFA building entirely.
        let memoises_inclusion = oracle.memoises(MemoKind::Inclusion);
        if memoises_inclusion {
            let query = MemoQuery::Inclusion {
                ctx,
                ops: &self.ops,
                max_states: self.max_states,
                a,
                b,
            };
            if let Some(verdict) = oracle.memo_lookup(&query).and_then(|ans| ans.verdict()) {
                self.stats.inclusion_memo_hits += 1;
                return Ok(verdict);
            }
        }
        let set = build_minterms_with(ctx, &self.ops, &[a, b], oracle, self.enumeration);
        self.stats.minterms += set.minterms.len();
        self.stats.enum_queries += set.enum_queries;
        self.stats.pruned_subtrees += set.pruned;
        if set.from_memo {
            self.stats.minterm_memo_hits += 1;
        }
        let mut matcher = MatchOracle::new(ctx, &self.ops, oracle);
        let mut verdict = true;
        for group in set.uniform_groups() {
            let mut alphabet: Vec<Minterm> = set
                .group_indices(&group)
                .into_iter()
                .map(|i| set.minterms[i].clone())
                .collect();
            if self.prune {
                let before = alphabet.len();
                alphabet = prune_alphabet(a, b, alphabet, &mut matcher);
                self.stats.alphabet_pruned += before - alphabet.len();
            }
            // Shape memoisation: the α-renamed (A, B, pruned alphabet) determines the
            // group verdict, so α-equal shapes skip the walk — across contexts, methods
            // and benchmarks.
            let memoises_shape = matcher.oracle.memoises(MemoKind::Shape);
            let shape_query = MemoQuery::Shape {
                a,
                b,
                alphabet: &alphabet,
                max_states: self.max_states,
            };
            if memoises_shape {
                if let Some(hit) = matcher
                    .oracle
                    .memo_lookup(&shape_query)
                    .and_then(|ans| ans.verdict())
                {
                    self.stats.shape_memo_hits += 1;
                    if !hit {
                        verdict = false;
                        break;
                    }
                    continue;
                }
            }
            let fallbacks_before = matcher.fallback_queries;
            let included = match self.mode {
                InclusionMode::OnTheFly => {
                    let run = product_included_with(
                        a,
                        b,
                        &alphabet,
                        &mut matcher,
                        self.max_states,
                        self.subsume,
                    )?;
                    self.stats.dfas_built += 2;
                    self.stats.fa_states += run.left_states + run.right_states;
                    self.stats.fa_transitions += run.left_transitions + run.right_transitions;
                    self.stats.product_states += run.product_states;
                    self.stats.subsumption_checks += run.subsumption_checks;
                    self.stats.subsumed_pairs += run.subsumed_pairs;
                    self.stats.simulation_memo_hits += run.simulation_memo_hits;
                    run.included
                }
                InclusionMode::Materialise => {
                    let da = Dfa::build(a, &alphabet, &mut matcher, self.max_states)?;
                    let db = Dfa::build(b, &alphabet, &mut matcher, self.max_states)?;
                    self.stats.dfas_built += 2;
                    self.stats.fa_states += da.num_states() + db.num_states();
                    self.stats.fa_transitions += da.num_transitions() + db.num_transitions();
                    da.included_in(&db).is_ok()
                }
            };
            self.stats.fa_inclusions += 1;
            if memoises_shape {
                // Only a fully propositional walk is a pure function of its shape; an
                // SMT fallback would have consulted the typing context behind the key's
                // back (unreachable for alphabets built from the automata's own literal
                // pool, but guarded rather than assumed).
                if matcher.fallback_queries == fallbacks_before {
                    matcher
                        .oracle
                        .memo_store(&shape_query, &MemoAnswer::Verdict(included));
                }
            }
            if !included {
                verdict = false;
                break;
            }
        }
        self.stats.transition_memo_hits += matcher.memo_hits;
        if memoises_inclusion {
            let query = MemoQuery::Inclusion {
                ctx,
                ops: &self.ops,
                max_states: self.max_states,
                a,
                b,
            };
            matcher
                .oracle
                .memo_store(&query, &MemoAnswer::Verdict(verdict));
        }
        Ok(verdict)
    }
}

/// Three-valued evaluation of a formula under a (partial) truth assignment to its atoms:
/// `Some(v)` when the assigned atoms determine the value, `None` when an unassigned atom
/// (or a quantifier) leaves it open. Short-circuiting is sound: a falsified conjunct
/// decides a conjunction even when siblings are undetermined. Shared with the
/// subsumption order's leaf-support comparison ([`crate::subsume`]).
pub(crate) fn eval_under(f: &Formula, assignment: &[(Atom, bool)]) -> Option<bool> {
    match f {
        Formula::True => Some(true),
        Formula::False => Some(false),
        Formula::Atom(a) => assignment.iter().find(|(x, _)| x == a).map(|(_, v)| *v),
        Formula::Not(g) => eval_under(g, assignment).map(|b| !b),
        Formula::And(fs) => {
            let mut all_known = true;
            for g in fs {
                match eval_under(g, assignment) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => all_known = false,
                }
            }
            all_known.then_some(true)
        }
        Formula::Or(fs) => {
            let mut all_known = true;
            for g in fs {
                match eval_under(g, assignment) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => all_known = false,
                }
            }
            all_known.then_some(false)
        }
        Formula::Implies(p, q) => match (eval_under(p, assignment), eval_under(q, assignment)) {
            (Some(false), _) | (_, Some(true)) => Some(true),
            (Some(true), Some(false)) => Some(false),
            _ => None,
        },
        Formula::Iff(p, q) => Some(eval_under(p, assignment)? == eval_under(q, assignment)?),
        Formula::Forall(_, _, _) => None,
    }
}

/// Per-group alphabet pruning: keeps one representative of every transition-behaviour
/// class of the group's minterms.
///
/// Within one uniform group, two minterms whose signed answers agree on every symbolic
/// event and guard of `a` and `b` induce the same successor on every residual state of
/// either DFA (a derivative can only consult the events and guards of the formula it
/// derives, all of which occur in the original pair), so the product construction over
/// the pruned alphabet reaches exactly the same states and the same inclusion verdict —
/// only the duplicate columns disappear. The classic win is operators referenced by
/// neither automaton: each contributes one all-false column per group, and they all
/// collapse into one.
///
/// The signature entailments are answered through the same per-check caches the DFA
/// construction uses, so pruning issues no query the unpruned build would not.
fn prune_alphabet(
    a: &Sfa,
    b: &Sfa,
    alphabet: Vec<Minterm>,
    matcher: &mut MatchOracle,
) -> Vec<Minterm> {
    let mut events = Vec::new();
    let mut guards = Vec::new();
    a.collect_events_guards(&mut events, &mut guards);
    b.collect_events_guards(&mut events, &mut guards);
    let mut seen: std::collections::BTreeSet<Vec<bool>> = std::collections::BTreeSet::new();
    let mut kept = Vec::with_capacity(alphabet.len());
    for m in alphabet {
        let mut bits: Vec<bool> = Vec::with_capacity(events.len() + guards.len());
        for e in &events {
            bits.push(matcher.event_matches(e, &m));
        }
        for phi in &guards {
            bits.push(matcher.guard_holds(phi, &m));
        }
        if seen.insert(bits) {
            kept.push(m);
        }
    }
    kept
}

/// Helpers shared by this crate's unit tests.
#[cfg(test)]
pub mod tests_support {
    /// In tests the "oracle" is simply the real solver.
    pub type PlainOracle = hat_logic::Solver;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Solver, Term};

    fn set_ops() -> Vec<OpSig> {
        vec![
            OpSig::new("insert", vec![("x".into(), Sort::Int)], Sort::Unit),
            OpSig::new("mem", vec![("x".into(), Sort::Int)], Sort::Bool),
        ]
    }

    fn ins_el() -> Sfa {
        Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        )
    }

    /// I_Set(el): once el is inserted it is never inserted again.
    fn uniqueness_invariant() -> Sfa {
        Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ))
    }

    fn ctx_el() -> VarCtx {
        VarCtx::new(vec![("el".into(), Sort::Int)], vec![])
    }

    #[test]
    fn reflexivity_and_trivial_cases() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let inv = uniqueness_invariant();
        assert!(checker.check(&ctx_el(), &inv, &inv, &mut solver).unwrap());
        assert!(checker
            .check(&ctx_el(), &Sfa::Zero, &inv, &mut solver)
            .unwrap());
        assert!(checker
            .check(&ctx_el(), &inv, &Sfa::universe(), &mut solver)
            .unwrap());
    }

    #[test]
    fn strictly_smaller_language_is_included() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let never = Sfa::globally(Sfa::not(ins_el()));
        let at_most_once = uniqueness_invariant();
        assert!(checker
            .check(&ctx_el(), &never, &at_most_once, &mut solver)
            .unwrap());
        assert!(!checker
            .check(&ctx_el(), &at_most_once, &never, &mut solver)
            .unwrap());
        assert!(checker.stats.fa_inclusions >= 2);
        assert!(checker.stats.minterms >= 2);
        // Transition resolution is propositional (minterms assign every qualifier atom),
        // so the remaining solver work is the scoped enumeration of the alphabet.
        assert!(solver.stats.queries + checker.stats.enum_queries > 0);
    }

    #[test]
    fn insert_preserves_uniqueness_only_when_not_present() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let inv = uniqueness_invariant();
        // Context automaton: invariant holds and el has never been inserted.
        let ctx_auto = Sfa::and(vec![inv.clone(), Sfa::not(Sfa::eventually(ins_el()))]);
        // After appending a single insert of el, the invariant must still hold:
        //   (ctx; ⟨insert el⟩ ∧ LAST) ⊆ I
        let post = Sfa::concat(ctx_auto, Sfa::and(vec![ins_el(), Sfa::last()]));
        assert!(checker.check(&ctx_el(), &post, &inv, &mut solver).unwrap());

        // Without the "not present" assumption the insertion may duplicate el:
        let bad_post = Sfa::concat(inv.clone(), Sfa::and(vec![ins_el(), Sfa::last()]));
        assert!(!checker
            .check(&ctx_el(), &bad_post, &inv, &mut solver)
            .unwrap());
    }

    #[test]
    fn guard_disjunct_splits_into_uniform_groups() {
        // A = □⟨isRoot(p)⟩ ∨ □¬⟨put key _ = v | key = p⟩ is included in itself but not in
        // □¬⟨put key _ = v | key = p⟩ alone (the root case allows puts of p).
        let kv_ops = vec![OpSig::new(
            "put",
            vec![
                ("key".into(), Sort::named("Path.t")),
                ("val".into(), Sort::named("Bytes.t")),
            ],
            Sort::Unit,
        )];
        let put_p = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::eq(Term::var("key"), Term::var("p")),
        );
        let root_guard = Sfa::globally(Sfa::guard(Formula::pred("isRoot", vec![Term::var("p")])));
        let no_put_p = Sfa::globally(Sfa::not(put_p));
        let a = Sfa::or(vec![root_guard, no_put_p.clone()]);
        let ctx = VarCtx::new(vec![("p".into(), Sort::named("Path.t"))], vec![]);
        let mut checker = InclusionChecker::new(kv_ops);
        let mut solver = Solver::default();
        assert!(checker.check(&ctx, &a, &a, &mut solver).unwrap());
        assert!(!checker.check(&ctx, &a, &no_put_p, &mut solver).unwrap());
        // With the context fact isRoot(p), A collapses to the universe, so inclusion in
        // the no-put automaton still fails...
        let ctx_root = VarCtx::new(
            vec![("p".into(), Sort::named("Path.t"))],
            vec![Formula::pred("isRoot", vec![Term::var("p")])],
        );
        assert!(!checker
            .check(&ctx_root, &a, &no_put_p, &mut solver)
            .unwrap());
        // ...but inclusion of the no-put automaton in A succeeds trivially under that fact.
        assert!(checker
            .check(&ctx_root, &no_put_p, &a, &mut solver)
            .unwrap());
    }

    #[test]
    fn context_facts_prune_impossible_events() {
        // Under the fact el < 0, an insert with argument 0 can never be the element el.
        let ops = set_ops();
        let insert_zero = Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::int(0)),
        );
        let not_ins_el = Sfa::globally(Sfa::not(ins_el()));
        let only_zero = Sfa::globally(Sfa::or(vec![Sfa::not(Sfa::any_event()), insert_zero]));
        let ctx = VarCtx::new(
            vec![("el".into(), Sort::Int)],
            vec![Formula::lt(Term::var("el"), Term::int(0))],
        );
        let mut checker = InclusionChecker::new(ops);
        let mut solver = Solver::default();
        // Every trace of inserts of 0 never inserts el (because el < 0 ≠ 0).
        assert!(checker
            .check(&ctx, &only_zero, &not_ins_el, &mut solver)
            .unwrap());
        // Without the context fact the inclusion must fail (el could be 0).
        let ctx_plain = ctx_el();
        assert!(!checker
            .check(&ctx_plain, &only_zero, &not_ins_el, &mut solver)
            .unwrap());
    }

    #[test]
    fn stats_accumulate() {
        let mut checker = InclusionChecker::new(set_ops());
        let mut solver = Solver::default();
        let inv = uniqueness_invariant();
        let never = Sfa::globally(Sfa::not(ins_el()));
        let _ = checker.check(&ctx_el(), &never, &inv, &mut solver).unwrap();
        assert!(checker.stats.dfas_built >= 2);
        assert!(checker.stats.fa_transitions > 0);
        assert!(checker.stats.avg_fa_size() > 0.0);
        let mut other = InclusionStats::default();
        other.merge(&checker.stats);
        assert_eq!(other.fa_inclusions, checker.stats.fa_inclusions);
    }
}
