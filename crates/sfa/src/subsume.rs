//! Subsumption orders for the antichain-pruned on-the-fly product walk.
//!
//! The on-the-fly inclusion check ([`crate::dfa::product_included`]) decides
//! `L(A) ⊆ L(B)` by breadth-first emptiness of `A × complement(det(B))` over pairs of
//! Brzozowski residuals. Antichain-based inclusion checking (De Wulf, Doyen, Henzinger,
//! Raskin, CAV 2006) keeps the visited set as an *antichain* under a subsumption order
//! and discards any newly-derived pair a visited pair subsumes; simulation-based
//! subsumption (Abdulla, Chen, Holík, Mayr, Vojnar, TACAS 2010) strengthens the order.
//! In the residual representation both reduce to language-inclusion orders between
//! residual formulas:
//!
//! > pair `(a, b)` is subsumed by visited `(a', b')` iff `L(a) ⊆ L(a')` and
//! > `L(b') ⊆ L(b)`.
//!
//! Dropping a subsumed pair is verdict-preserving: a counterexample suffix `w` from
//! `(a, b)` (`w ∈ L(a)`, `w ∉ L(b)`) is also one from `(a', b')` (`w ∈ L(a')` by the
//! first inclusion, `w ∉ L(b')` by the second), so the walk that explores `(a', b')`
//! instead finds a violation whenever the unpruned walk would — and a subsumed
//! *accepting* pair forces its subsumer to be accepting too, so early exit happens no
//! later. Soundness never depends on *which* valid subsumptions fire, so the order only
//! has to be a sound under-approximation of language inclusion; every `true` must be
//! semantically justified, `false` simply means "not pruned".
//!
//! Two tiers implement the order, selected by [`SubsumptionMode`]:
//!
//! * **Syntactic/propositional** ([`SubsumptionMode::Syntactic`]): a structural
//!   recursion over the residual formulas — congruence and monotonicity rules for the
//!   regular/temporal connectives, with event and guard leaves compared by their
//!   *support* over the group's minterm alphabet, evaluated propositionally from the
//!   minterm assignments (`eval_under`, zero SMT). Memoised per walk in the per-side
//!   order cache.
//! * **Memoised simulation** ([`SubsumptionMode::Simulation`]): the syntactic order
//!   strengthened by a greatest-fixpoint simulation preorder over the residual states
//!   whose transition rows the product frontier has *already derived* — it never derives
//!   a row of its own, so it cannot reach a state (or a state-bound error) the unpruned
//!   walk would not. Definite verdicts are persisted through the engine's memo store as
//!   an axiom-independent record kind (`U`), following the `shape_key` discipline:
//!   oracles refuse to store when a context-dependent SMT fallback fired.

use crate::ast::{Sfa, SymbolicEvent};
use crate::dfa::{nullable, TransitionOracle};
use crate::inclusion::eval_under;
use crate::minterm::{arg_name, res_name, Minterm};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How the on-the-fly product walk prunes its frontier.
///
/// All three modes are verdict-identical (the differential harnesses enforce it); they
/// differ only in how many product pairs the walk explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsumptionMode {
    /// Plain breadth-first search over exact pairs (the pre-antichain baseline, kept
    /// for differential testing and measurement).
    Off,
    /// Syntactic/propositional subsumption only: structural rules plus leaf supports
    /// evaluated from the minterm assignments. Zero SMT, zero persistence.
    Syntactic,
    /// Syntactic subsumption strengthened by the lazily-computed simulation preorder
    /// over already-derived transition rows, memoised across runs through the engine's
    /// store.
    #[default]
    Simulation,
}

impl SubsumptionMode {
    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<SubsumptionMode> {
        match s {
            "off" => Some(SubsumptionMode::Off),
            "syntactic" => Some(SubsumptionMode::Syntactic),
            "simulation" => Some(SubsumptionMode::Simulation),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SubsumptionMode::Off => "off",
            SubsumptionMode::Syntactic => "syntactic",
            SubsumptionMode::Simulation => "simulation",
        }
    }
}

/// Work counters of one subsumption-pruned walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubsumeStats {
    /// Number of candidate-pair × antichain-member subsumption comparisons.
    pub subsumption_checks: usize,
    /// Number of derived product pairs dropped because a visited pair subsumes them.
    pub subsumed_pairs: usize,
    /// Number of simulation verdicts answered from the persistent memo instead of being
    /// recomputed by the local fixpoint.
    pub simulation_memo_hits: usize,
}

/// Node-visit budget of one syntactic order query: the structural rules try several
/// decompositions, so an explicit fuel keeps a single query linear-ish in practice and
/// bounded always. Exhausted fuel answers `false` ("not provably included"), which is
/// always sound.
const SYNTACTIC_FUEL: usize = 2048;

/// The signed answer of one alphabet symbol for an event leaf, resolved propositionally
/// from the minterm's assignment (exactly the renaming `MatchOracle::event_matches`
/// performs before its own `eval_under` — but with *no* SMT fallback: an undetermined
/// atom makes the whole support unknown).
fn event_bit(e: &SymbolicEvent, m: &Minterm) -> Option<bool> {
    if e.op != m.op {
        return Some(false);
    }
    let renamed = e.phi.rename_free_vars(&|v: &str| {
        if v == e.result {
            Some(res_name())
        } else {
            e.args.iter().position(|x| x == v).map(arg_name)
        }
    });
    eval_under(&renamed, &m.assignment)
}

/// The support of a leaf over the alphabet: which symbols it matches. `None` when any
/// symbol's answer is not determined propositionally.
fn leaf_support(leaf: &Sfa, alphabet: &[Minterm]) -> Option<Vec<bool>> {
    alphabet
        .iter()
        .map(|m| match leaf {
            Sfa::Event(e) => event_bit(e, m),
            Sfa::Guard(phi) => eval_under(phi, &m.assignment),
            _ => None,
        })
        .collect()
}

/// The syntactic/propositional order: `true` only when `L(phi) ⊆ L(psi)` over the given
/// alphabet is provable by the structural rules below. Every rule is sound; none is
/// complete, so `false` means "unknown".
fn leq_syntactic(phi: &Sfa, psi: &Sfa, alphabet: &[Minterm], fuel: &mut usize) -> bool {
    if *fuel == 0 {
        return false;
    }
    *fuel -= 1;
    if phi == psi || matches!(phi, Sfa::Zero) || psi.is_universe() {
        return true;
    }
    // Necessary condition: ε ∈ L(phi) requires ε ∈ L(psi).
    if nullable(phi) && !nullable(psi) {
        return false;
    }
    // Complete decompositions: a union on the left (or an intersection on the right)
    // is included iff every part is.
    if let Sfa::Or(parts) = phi {
        if parts.iter().all(|p| leq_syntactic(p, psi, alphabet, fuel)) {
            return true;
        }
    }
    if let Sfa::And(parts) = psi {
        if parts.iter().all(|p| leq_syntactic(phi, p, alphabet, fuel)) {
            return true;
        }
    }
    // Congruences: complement is antitone, the other connectives monotone. A failed
    // guard falls through to the decompositions below, like any unmatched pair.
    match (phi, psi) {
        (Sfa::Not(x), Sfa::Not(y)) if leq_syntactic(y, x, alphabet, fuel) => return true,
        (Sfa::Concat(x1, y1), Sfa::Concat(x2, y2))
            if leq_syntactic(x1, x2, alphabet, fuel) && leq_syntactic(y1, y2, alphabet, fuel) =>
        {
            return true
        }
        (Sfa::Star(x), Sfa::Star(y)) if leq_syntactic(x, y, alphabet, fuel) => return true,
        (Sfa::Next(x), Sfa::Next(y)) if leq_syntactic(x, y, alphabet, fuel) => return true,
        (Sfa::Until(x1, y1), Sfa::Until(x2, y2))
            if leq_syntactic(x1, x2, alphabet, fuel) && leq_syntactic(y1, y2, alphabet, fuel) =>
        {
            return true
        }
        _ => {}
    }
    // Sufficient decompositions: one intersected part already below, or inclusion into
    // one union member.
    if let Sfa::And(parts) = phi {
        if parts.iter().any(|p| leq_syntactic(p, psi, alphabet, fuel)) {
            return true;
        }
    }
    if let Sfa::Or(parts) = psi {
        if parts.iter().any(|p| leq_syntactic(phi, p, alphabet, fuel)) {
            return true;
        }
    }
    // L(ε) = {ε}: included in anything nullable.
    if matches!(phi, Sfa::Epsilon) && nullable(psi) {
        return true;
    }
    // Leaves denote "one matching symbol, then anything" (their derivative is the
    // universe on a match, Zero otherwise), so leaf-vs-leaf inclusion is support
    // inclusion over the alphabet.
    if matches!(phi, Sfa::Event(_) | Sfa::Guard(_)) && matches!(psi, Sfa::Event(_) | Sfa::Guard(_))
    {
        if let (Some(sp), Some(sq)) = (leaf_support(phi, alphabet), leaf_support(psi, alphabet)) {
            return sp.iter().zip(&sq).all(|(&a, &b)| !a || b);
        }
    }
    false
}

/// One cached order verdict. `true` and *definite* `false` verdicts are semantic facts
/// about the two residuals and never expire; a `false` that was pessimistic (some
/// transition row of the pair closure was not derived yet) is only valid while the
/// side's derived-row generation is unchanged — later rows can flip it. The two flags
/// record which tiers already ran for the pair, so a generation retry resumes at the
/// simulation tier instead of re-proving what cannot change within a walk.
#[derive(Debug, Clone, Copy)]
struct Entry {
    verdict: bool,
    definite: bool,
    gen: usize,
    /// The syntactic tier already answered `false`. A fixed formula pair's syntactic
    /// verdict never changes within a walk, so retries skip the structural recursion.
    syn_false: bool,
    /// The persistent memo was already consulted and missed. Any verdict the store
    /// could gain for this pair mid-walk would also be in this cache as definite, so
    /// one key construction per pair per walk suffices.
    memo_missed: bool,
}

/// Fixpoint marks of the simulation closure. `Good` nodes form a post-fixed point of
/// the simulation operator over derived rows, so they certify language inclusion;
/// `BadDefinite` nodes carry a concrete counterexample word (a nullability violation
/// reached through derived rows); `BadPessimistic` nodes only failed because a row was
/// missing (or a budget was hit) and may become good once more rows exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    Good,
    BadDefinite,
    BadPessimistic,
}

/// Bound on the pair closure explored by one simulation query, a safety valve against
/// pathological products (the closure is normally far smaller than the derived state
/// count squared). Exceeding it yields a pessimistic `false`.
const SIMULATION_CLOSURE_BUDGET: usize = 4096;

/// The memoised subsumption order over one side's residual states (indices into a
/// `LazySide`). Both tiers answer through [`SideOrder::leq`]; results are cached per
/// walk, keyed by the state-index pair.
#[derive(Debug, Default)]
struct SideOrder {
    cache: BTreeMap<(usize, usize), Entry>,
}

impl SideOrder {
    /// Is `L(states[i]) ⊆ L(states[j])` provable under `mode`?
    #[allow(clippy::too_many_arguments)]
    fn leq(
        &mut self,
        i: usize,
        j: usize,
        states: &[Sfa],
        rows: &[Option<Vec<usize>>],
        alphabet: &[Minterm],
        gen: usize,
        mode: SubsumptionMode,
        oracle: &mut dyn TransitionOracle,
        stats: &mut SubsumeStats,
    ) -> bool {
        if i == j {
            return true;
        }
        let (syn_false, memo_missed) = match self.cache.get(&(i, j)) {
            Some(e) => {
                if e.verdict || e.definite || e.gen == gen {
                    return e.verdict;
                }
                // A stale pessimistic entry: resume at the first tier it has not
                // already exhausted.
                (e.syn_false, e.memo_missed)
            }
            None => (false, false),
        };
        if !syn_false {
            let mut fuel = SYNTACTIC_FUEL;
            if leq_syntactic(&states[i], &states[j], alphabet, &mut fuel) {
                self.cache.insert(
                    (i, j),
                    Entry {
                        verdict: true,
                        definite: true,
                        gen,
                        syn_false: false,
                        memo_missed,
                    },
                );
                return true;
            }
        }
        if mode != SubsumptionMode::Simulation {
            // The syntactic verdict of a fixed formula pair never changes within a walk.
            self.cache.insert(
                (i, j),
                Entry {
                    verdict: false,
                    definite: true,
                    gen,
                    syn_false: true,
                    memo_missed,
                },
            );
            return false;
        }
        if rows[i].is_none() || rows[j].is_none() {
            // Nothing to simulate on yet; retry once this side derives more rows. The
            // persistent memo is deliberately not consulted here: a probe costs a key
            // serialisation plus a shared-tier lookup, which is only worth paying when
            // the alternative is running the local fixpoint.
            self.cache.insert(
                (i, j),
                Entry {
                    verdict: false,
                    definite: false,
                    gen,
                    syn_false: true,
                    memo_missed,
                },
            );
            return false;
        }
        // Simulation tier: persisted verdicts first — a hit replaces the fixpoint
        // below, and the stored verdicts are semantic facts about the (residual pair,
        // alphabet), so a hit is valid regardless of which rows are derived locally.
        if !memo_missed {
            if let Some(v) = oracle.subsumption_lookup(&states[i], &states[j], alphabet) {
                stats.simulation_memo_hits += 1;
                self.cache.insert(
                    (i, j),
                    Entry {
                        verdict: v,
                        definite: true,
                        gen,
                        syn_false: true,
                        memo_missed: false,
                    },
                );
                return v;
            }
        }
        // Record the exhausted tiers before the fixpoint runs: its harvest preserves
        // these flags, and the sentinel generation keeps the entry "stale" so the
        // closure re-examines the root instead of trusting a pessimistic placeholder.
        self.cache.insert(
            (i, j),
            Entry {
                verdict: false,
                definite: false,
                gen: usize::MAX,
                syn_false: true,
                memo_missed: true,
            },
        );
        self.simulate(i, j, states, rows, alphabet, gen, oracle)
    }

    /// Greatest-fixpoint simulation over the pair closure of `(root_i, root_j)` on
    /// already-derived transition rows. Caches every closure verdict and persists the
    /// root when it is definite.
    #[allow(clippy::too_many_arguments)]
    fn simulate(
        &mut self,
        root_i: usize,
        root_j: usize,
        states: &[Sfa],
        rows: &[Option<Vec<usize>>],
        alphabet: &[Minterm],
        gen: usize,
        oracle: &mut dyn TransitionOracle,
    ) -> bool {
        let root = (root_i, root_j);
        let mut marks: BTreeMap<(usize, usize), Mark> = BTreeMap::new();
        let mut edges: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        let mut over_budget = false;
        queue.push_back(root);
        while let Some((p, q)) = queue.pop_front() {
            if p == q || marks.contains_key(&(p, q)) || edges.contains_key(&(p, q)) {
                continue;
            }
            if marks.len() + edges.len() >= SIMULATION_CLOSURE_BUDGET {
                over_budget = true;
                marks.insert((p, q), Mark::BadPessimistic);
                continue;
            }
            if let Some(e) = self.cache.get(&(p, q)) {
                if e.verdict {
                    marks.insert((p, q), Mark::Good);
                    continue;
                }
                if e.definite {
                    marks.insert((p, q), Mark::BadDefinite);
                    continue;
                }
                if e.gen == gen {
                    marks.insert((p, q), Mark::BadPessimistic);
                    continue;
                }
                // A stale pessimistic verdict: re-examine against the current rows.
            }
            if nullable(&states[p]) && !nullable(&states[q]) {
                marks.insert((p, q), Mark::BadDefinite);
                continue;
            }
            let (Some(rp), Some(rq)) = (&rows[p], &rows[q]) else {
                // No rows to chase: the syntactic order is the only recourse here.
                let mut fuel = SYNTACTIC_FUEL;
                let mark = if leq_syntactic(&states[p], &states[q], alphabet, &mut fuel) {
                    Mark::Good
                } else {
                    Mark::BadPessimistic
                };
                marks.insert((p, q), mark);
                continue;
            };
            let succ: BTreeSet<(usize, usize)> =
                rp.iter().zip(rq.iter()).map(|(&x, &y)| (x, y)).collect();
            queue.extend(succ.iter().copied());
            edges.insert((p, q), succ.into_iter().collect());
        }
        // Greatest fixpoint: interior nodes start good; a bad successor knocks a node
        // out, definite badness dominating pessimistic badness. Marks only move upward
        // (Good → BadPessimistic → BadDefinite), so the sweep terminates.
        loop {
            let mut changed = false;
            for (node, succs) in &edges {
                let current = marks.get(node).copied();
                if current == Some(Mark::BadDefinite) {
                    continue;
                }
                let mut worst: Option<Mark> = None;
                for s in succs {
                    let m = if s.0 == s.1 {
                        Mark::Good
                    } else {
                        marks.get(s).copied().unwrap_or(Mark::Good)
                    };
                    match m {
                        Mark::BadDefinite => {
                            worst = Some(Mark::BadDefinite);
                            break;
                        }
                        Mark::BadPessimistic => worst = Some(Mark::BadPessimistic),
                        Mark::Good => {}
                    }
                }
                if let Some(w) = worst {
                    if current != Some(w) {
                        marks.insert(*node, w);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Harvest: every closure node's verdict is cached; surviving (Good) nodes form
        // a simulation relation on derived rows, hence genuine language inclusions.
        let mark_of = |node: &(usize, usize)| marks.get(node).copied().unwrap_or(Mark::Good);
        let nodes: Vec<(usize, usize)> = edges.keys().chain(marks.keys()).copied().collect();
        for node in nodes {
            let mark = mark_of(&node);
            // Preserve the tier flags an earlier `leq` recorded for this pair; closure
            // nodes seen here for the first time have exhausted neither tier.
            let (syn_false, memo_missed) = self
                .cache
                .get(&node)
                .map(|e| (e.syn_false, e.memo_missed))
                .unwrap_or((false, false));
            self.cache.insert(
                node,
                Entry {
                    verdict: mark == Mark::Good,
                    definite: mark != Mark::BadPessimistic,
                    gen,
                    syn_false,
                    memo_missed,
                },
            );
        }
        let root_mark = mark_of(&root);
        let verdict = root_mark == Mark::Good;
        // Persist only definite verdicts: a pessimistic `false` depends on which rows
        // happen to be derived, which is not part of the memo key. (An over-budget
        // closure can under-mark interior nodes, so nothing is persisted then either.)
        if root_mark != Mark::BadPessimistic && !over_budget {
            oracle.subsumption_store(&states[root_i], &states[root_j], alphabet, verdict);
        }
        verdict
    }
}

/// The antichain filter of one product walk: a [`SideOrder`] per side plus the walk's
/// counters. A candidate pair is dropped when any antichain member subsumes it.
#[derive(Debug, Default)]
pub(crate) struct Subsumer {
    mode: SubsumptionMode,
    left: SideOrder,
    right: SideOrder,
    pub(crate) stats: SubsumeStats,
}

impl Subsumer {
    pub(crate) fn new(mode: SubsumptionMode) -> Subsumer {
        Subsumer {
            mode,
            ..Subsumer::default()
        }
    }

    /// Is the candidate pair `(na, nb)` subsumed by some member of `antichain`?
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn subsumed(
        &mut self,
        na: usize,
        nb: usize,
        antichain: &[(usize, usize)],
        left_states: &[Sfa],
        left_rows: &[Option<Vec<usize>>],
        right_states: &[Sfa],
        right_rows: &[Option<Vec<usize>>],
        alphabet: &[Minterm],
        oracle: &mut dyn TransitionOracle,
    ) -> bool {
        if self.mode == SubsumptionMode::Off {
            return false;
        }
        let left_gen = left_rows.iter().filter(|r| r.is_some()).count();
        let right_gen = right_rows.iter().filter(|r| r.is_some()).count();
        for &(va, vb) in antichain {
            self.stats.subsumption_checks += 1;
            if self.left.leq(
                na,
                va,
                left_states,
                left_rows,
                alphabet,
                left_gen,
                self.mode,
                oracle,
                &mut self.stats,
            ) && self.right.leq(
                vb,
                nb,
                right_states,
                right_rows,
                alphabet,
                right_gen,
                self.mode,
                oracle,
                &mut self.stats,
            ) {
                self.stats.subsumed_pairs += 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Atom, Formula, Term};

    fn ins_el() -> Sfa {
        Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        )
    }

    /// Alphabet with two minterms: insert of el (index 0), insert of something else (1).
    fn alphabet() -> Vec<Minterm> {
        let lit = Atom::Eq(Term::var("#arg0"), Term::var("el"));
        vec![
            Minterm {
                op: "insert".into(),
                assignment: vec![(lit.clone(), true)],
            },
            Minterm {
                op: "insert".into(),
                assignment: vec![(lit, false)],
            },
        ]
    }

    fn syn(phi: &Sfa, psi: &Sfa) -> bool {
        let mut fuel = SYNTACTIC_FUEL;
        leq_syntactic(phi, psi, &alphabet(), &mut fuel)
    }

    #[test]
    fn mode_spellings_round_trip() {
        for mode in [
            SubsumptionMode::Off,
            SubsumptionMode::Syntactic,
            SubsumptionMode::Simulation,
        ] {
            assert_eq!(SubsumptionMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(SubsumptionMode::parse("nope"), None);
        assert_eq!(SubsumptionMode::default(), SubsumptionMode::Simulation);
    }

    #[test]
    fn syntactic_order_trivia() {
        let e = ins_el();
        assert!(syn(&Sfa::Zero, &e));
        assert!(syn(&e, &Sfa::universe()));
        assert!(syn(&e, &e));
        // ε is included exactly in nullable languages.
        assert!(syn(&Sfa::Epsilon, &Sfa::universe()));
        assert!(!syn(&Sfa::Epsilon, &e));
        // Nullability is a necessary condition.
        assert!(!syn(&Sfa::universe(), &e));
    }

    #[test]
    fn syntactic_order_decomposes_unions_and_intersections() {
        let e = ins_el();
        let other = Sfa::globally(Sfa::not(e.clone()));
        let union = Sfa::Or(vec![e.clone(), other.clone()]);
        // Every member is below the union; an intersection is below every member.
        assert!(syn(&e, &union));
        assert!(syn(&other, &union));
        let inter = Sfa::And(vec![e.clone(), other.clone()]);
        assert!(syn(&inter, &e));
        assert!(syn(&inter, &other));
        // Complement is antitone.
        assert!(syn(&Sfa::Not(Box::new(union)), &Sfa::Not(Box::new(e))));
    }

    #[test]
    fn leaf_supports_decide_event_inclusion() {
        // ⟨insert | x = el⟩ matches only minterm 0; ⟨insert | ⊤⟩ matches both.
        let narrow = ins_el();
        let wide = Sfa::event("insert", vec!["x".into()], "v", Formula::True);
        assert!(syn(&narrow, &wide));
        assert!(!syn(&wide, &narrow));
        // Guard leaves compare the same way.
        assert!(syn(&narrow, &Sfa::Guard(Formula::True)));
    }

    #[test]
    fn simulation_certifies_inclusion_on_derived_rows() {
        // Two states with identical derived rows and compatible nullability: state 0
        // loops to itself, state 1 loops to itself; 0 non-nullable, 1 nullable. The
        // syntactic order cannot relate the (structurally alien) formulas, but the
        // simulation fixpoint over the rows can.
        let a = Sfa::eventually(ins_el());
        // Semantically the universe, but not syntactically (`is_universe` only matches
        // the `□⟨⊤⟩` spelling), so the syntactic tier cannot answer.
        let b = Sfa::globally(Sfa::any_event());
        let states = [a, b];
        let rows = [Some(vec![0, 0]), Some(vec![1, 1])];
        struct NoOracle;
        impl TransitionOracle for NoOracle {
            fn event_matches(&mut self, _: &SymbolicEvent, _: &Minterm) -> bool {
                unreachable!("simulation must not resolve transitions")
            }
            fn guard_holds(&mut self, _: &Formula, _: &Minterm) -> bool {
                unreachable!("simulation must not resolve transitions")
            }
        }
        let mut order = SideOrder::default();
        let mut stats = SubsumeStats::default();
        // ◇⟨insert el⟩ ⊑ □⟨⊤⟩ — the universe simulates everything.
        assert!(order.leq(
            0,
            1,
            &states,
            &rows,
            &alphabet(),
            2,
            SubsumptionMode::Simulation,
            &mut NoOracle,
            &mut stats,
        ));
        // The converse fails definitely: state 1 is nullable, state 0 is not.
        assert!(!order.leq(
            1,
            0,
            &states,
            &rows,
            &alphabet(),
            2,
            SubsumptionMode::Simulation,
            &mut NoOracle,
            &mut stats,
        ));
    }

    #[test]
    fn pessimistic_verdicts_expire_with_the_row_generation() {
        let a = Sfa::eventually(ins_el());
        let b = Sfa::globally(Sfa::not(ins_el()));
        let states = [a, b];
        struct NoOracle;
        impl TransitionOracle for NoOracle {
            fn event_matches(&mut self, _: &SymbolicEvent, _: &Minterm) -> bool {
                unreachable!()
            }
            fn guard_holds(&mut self, _: &Formula, _: &Minterm) -> bool {
                unreachable!()
            }
        }
        let mut order = SideOrder::default();
        let mut stats = SubsumeStats::default();
        // With no rows derived the query is pessimistically false...
        let no_rows: [Option<Vec<usize>>; 2] = [None, None];
        assert!(!order.leq(
            0,
            1,
            &states,
            &no_rows,
            &alphabet(),
            0,
            SubsumptionMode::Simulation,
            &mut NoOracle,
            &mut stats,
        ));
        let entry = order.cache.get(&(0, 1)).copied().expect("cached");
        assert!(!entry.verdict && !entry.definite, "must stay retryable");
        // ...and re-examined once the generation moves: rows where 0 steps into a
        // definite nullability violation produce a *definite* false.
        let rows = [Some(vec![1, 0]), Some(vec![0, 1])];
        assert!(!order.leq(
            0,
            1,
            &states,
            &rows,
            &alphabet(),
            2,
            SubsumptionMode::Simulation,
            &mut NoOracle,
            &mut stats,
        ));
    }
}
