//! Deterministic finite automata over a minterm alphabet, built with Brzozowski-style
//! derivatives of symbolic-automaton formulas (the "alphabet transformation" of paper
//! Algorithm 2 followed by classical automaton construction).

use crate::ast::{Sfa, SymbolicEvent};
use crate::minterm::Minterm;
use hat_logic::Formula;
use std::collections::BTreeMap;
use std::fmt;

/// Decides whether a minterm (an equivalence class of concrete events) is covered by a
/// symbolic event or guard. Implementations typically answer by SMT entailment queries.
pub trait TransitionOracle {
    /// Does every event described by `m` match the symbolic event `e`?
    fn event_matches(&mut self, e: &SymbolicEvent, m: &Minterm) -> bool;
    /// Does the (event-independent) guard `phi` hold under the minterm's context valuation?
    fn guard_holds(&mut self, phi: &Formula, m: &Minterm) -> bool;

    /// Looks up a memoised successor for `state × minterm`. A successor is a pure
    /// syntactic function of the state formula and the oracle's answers for the events
    /// and guards occurring in it, so implementations can key a run-wide memo on exactly
    /// that data (α-renamed) and share transitions across structurally equal
    /// sub-automata. `None` (the default) computes the derivative.
    fn derivative_lookup(&mut self, state: &Sfa, m: &Minterm) -> Option<Sfa> {
        let _ = (state, m);
        None
    }

    /// Memoises a computed successor for later [`TransitionOracle::derivative_lookup`]s.
    fn derivative_store(&mut self, state: &Sfa, m: &Minterm, succ: &Sfa) {
        let _ = (state, m, succ);
    }
}

/// Errors raised while constructing a DFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfaBuildError {
    /// The derivative construction exceeded the state bound (the formula is too complex).
    TooManyStates(usize),
}

impl fmt::Display for DfaBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfaBuildError::TooManyStates(n) => {
                write!(f, "derivative construction exceeded {n} states")
            }
        }
    }
}

impl std::error::Error for DfaBuildError {}

/// A complete DFA over a finite minterm alphabet. State 0 is the initial state.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The formula labelling each state (its residual language).
    pub states: Vec<Sfa>,
    /// Whether each state accepts (i.e. its residual language contains the empty trace).
    pub accepting: Vec<bool>,
    /// `transitions[s][c]` is the successor of state `s` on alphabet symbol `c`.
    pub transitions: Vec<Vec<usize>>,
}

/// Whether the automaton accepts the empty trace (`ν` in derivative terminology).
pub fn nullable(a: &Sfa) -> bool {
    match a {
        Sfa::Zero | Sfa::Event(_) | Sfa::Guard(_) | Sfa::Until(_, _) => false,
        Sfa::Epsilon | Sfa::Star(_) => true,
        Sfa::Not(x) => !nullable(x),
        Sfa::And(parts) => parts.iter().all(nullable),
        Sfa::Or(parts) => parts.iter().any(nullable),
        Sfa::Concat(x, y) => nullable(x) && nullable(y),
        // Positions past the end of a trace behave like the empty suffix (see `accept`).
        Sfa::Next(x) => nullable(x),
    }
}

/// The Brzozowski derivative of `a` with respect to the minterm `m`: a formula accepted by
/// exactly the traces `α` such that `e·α` is accepted by `a` for events `e` in class `m`.
pub fn derivative(a: &Sfa, m: &Minterm, oracle: &mut dyn TransitionOracle) -> Sfa {
    match a {
        Sfa::Zero | Sfa::Epsilon => Sfa::Zero,
        Sfa::Event(e) => {
            if e.op == m.op && oracle.event_matches(e, m) {
                Sfa::universe()
            } else {
                Sfa::Zero
            }
        }
        Sfa::Guard(phi) => {
            if oracle.guard_holds(phi, m) {
                Sfa::universe()
            } else {
                Sfa::Zero
            }
        }
        Sfa::Not(x) => Sfa::not(derivative(x, m, oracle)),
        Sfa::And(parts) => Sfa::and(parts.iter().map(|p| derivative(p, m, oracle)).collect()),
        Sfa::Or(parts) => Sfa::or(parts.iter().map(|p| derivative(p, m, oracle)).collect()),
        Sfa::Concat(x, y) => {
            let left = Sfa::concat(derivative(x, m, oracle), (**y).clone());
            if nullable(x) {
                Sfa::or(vec![left, derivative(y, m, oracle)])
            } else {
                left
            }
        }
        Sfa::Next(x) => (**x).clone(),
        Sfa::Until(x, y) => {
            let dy = derivative(y, m, oracle);
            let dx = derivative(x, m, oracle);
            Sfa::or(vec![dy, Sfa::and(vec![dx, a.clone()])])
        }
        Sfa::Star(x) => Sfa::concat(derivative(x, m, oracle), a.clone()),
    }
}

impl Dfa {
    /// Builds the complete DFA of `a` over the alphabet `alphabet`.
    pub fn build(
        a: &Sfa,
        alphabet: &[Minterm],
        oracle: &mut dyn TransitionOracle,
        max_states: usize,
    ) -> Result<Dfa, DfaBuildError> {
        // Every state is kept in α-normal form so that residuals that differ only in
        // event binder spelling (including memoised successors, which are stored
        // binder-canonically) share one state.
        let a = a.alpha_normal();
        let mut states: Vec<Sfa> = vec![a.clone()];
        let mut index: BTreeMap<Sfa, usize> = BTreeMap::new();
        index.insert(a.clone(), 0);
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut work = vec![0usize];
        while let Some(s) = work.pop() {
            if transitions.len() <= s {
                transitions.resize(states.len(), Vec::new());
            }
            if !transitions[s].is_empty() {
                continue;
            }
            let formula = states[s].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for m in alphabet {
                // Memoised successors come back with the caller's free-variable names
                // but were sorted under the storer's, so they are re-normalised; fresh
                // derivatives are normalised before being stored and indexed.
                let d = match oracle.derivative_lookup(&formula, m) {
                    Some(d) => d.alpha_normal(),
                    None => {
                        let d = derivative(&formula, m, oracle).alpha_normal();
                        oracle.derivative_store(&formula, m, &d);
                        d
                    }
                };
                let target = match index.get(&d) {
                    Some(&t) => t,
                    None => {
                        let t = states.len();
                        if t >= max_states {
                            return Err(DfaBuildError::TooManyStates(max_states));
                        }
                        states.push(d.clone());
                        index.insert(d, t);
                        work.push(t);
                        t
                    }
                };
                row.push(target);
            }
            if transitions.len() < states.len() {
                transitions.resize(states.len(), Vec::new());
            }
            transitions[s] = row;
        }
        if transitions.len() < states.len() {
            transitions.resize(states.len(), Vec::new());
        }
        // Any state left without a row (unreachable duplicates) gets a self-loop row.
        let alphabet_len = alphabet.len();
        for (s, row) in transitions.iter_mut().enumerate() {
            if row.is_empty() && alphabet_len > 0 {
                *row = vec![s; alphabet_len];
            }
        }
        let accepting = states.iter().map(nullable).collect();
        Ok(Dfa {
            states,
            accepting,
            transitions,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (states × alphabet symbols actually stored).
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Runs the DFA on a word of alphabet-symbol indices.
    pub fn accepts_word(&self, word: &[usize]) -> bool {
        let mut s = 0usize;
        for &c in word {
            s = self.transitions[s][c];
        }
        self.accepting[s]
    }

    /// Checks `L(self) ⊆ L(other)`; both DFAs must be over the same alphabet.
    /// Returns a counterexample word on failure.
    pub fn included_in(&self, other: &Dfa) -> Result<(), Vec<usize>> {
        let alphabet_len = self.transitions.first().map(Vec::len).unwrap_or(0);
        let mut seen = std::collections::BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0usize, 0usize, Vec::new()));
        seen.insert((0usize, 0usize));
        while let Some((sa, sb, word)) = queue.pop_front() {
            if self.accepting[sa] && !other.accepting[sb] {
                return Err(word);
            }
            for c in 0..alphabet_len {
                let na = self.transitions[sa][c];
                let nb = other.transitions[sb][c];
                if seen.insert((na, nb)) {
                    let mut w = word.clone();
                    w.push(c);
                    queue.push_back((na, nb, w));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Atom, Term};

    /// A purely syntactic oracle for tests: a minterm matches a symbolic event iff every
    /// atom of the event's qualifier appears positively in the minterm (after the canonical
    /// renaming already used to build the minterm), and guards are evaluated the same way.
    #[derive(Default)]
    struct SyntacticOracle;

    fn atom_holds(m: &Minterm, atom: &Atom) -> bool {
        m.assignment.iter().any(|(a, v)| a == atom && *v)
    }

    impl TransitionOracle for SyntacticOracle {
        fn event_matches(&mut self, e: &SymbolicEvent, m: &Minterm) -> bool {
            let renamed = e.phi.rename_free_vars(&|v: &str| {
                if v == e.result {
                    Some(crate::minterm::res_name())
                } else {
                    e.args
                        .iter()
                        .position(|x| x == v)
                        .map(crate::minterm::arg_name)
                }
            });
            match renamed {
                Formula::True => true,
                Formula::Atom(a) => atom_holds(m, &a),
                Formula::And(fs) => fs.iter().all(|f| match f {
                    Formula::Atom(a) => atom_holds(m, a),
                    Formula::True => true,
                    _ => false,
                }),
                _ => false,
            }
        }
        fn guard_holds(&mut self, phi: &Formula, m: &Minterm) -> bool {
            match phi {
                Formula::True => true,
                Formula::Atom(a) => atom_holds(m, a),
                _ => false,
            }
        }
    }

    fn ins_el() -> Sfa {
        Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        )
    }

    /// Alphabet with two minterms: insert of el (index 0), insert of something else (1).
    fn alphabet() -> Vec<Minterm> {
        let lit = Atom::Eq(Term::var("#arg0"), Term::var("el"));
        vec![
            Minterm {
                op: "insert".into(),
                assignment: vec![(lit.clone(), true)],
            },
            Minterm {
                op: "insert".into(),
                assignment: vec![(lit, false)],
            },
        ]
    }

    #[test]
    fn nullable_matches_acceptance_of_empty_trace() {
        assert!(nullable(&Sfa::universe()));
        assert!(nullable(&Sfa::Epsilon));
        assert!(!nullable(&ins_el()));
        assert!(!nullable(&Sfa::eventually(ins_el())));
        assert!(nullable(&Sfa::globally(ins_el())));
        assert!(nullable(&Sfa::last()));
    }

    #[test]
    fn derivative_of_event_literal() {
        let mut o = SyntacticOracle;
        let a = ins_el();
        let d_match = derivative(&a, &alphabet()[0], &mut o);
        assert!(d_match.is_universe());
        let d_miss = derivative(&a, &alphabet()[1], &mut o);
        assert_eq!(d_miss, Sfa::Zero);
    }

    #[test]
    fn dfa_for_uniqueness_invariant() {
        // I = □(ins_el ⇒ ◯¬♦ins_el): at most one insert of el.
        let inv = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let mut o = SyntacticOracle;
        let dfa = Dfa::build(&inv, &alphabet(), &mut o, 1000).unwrap();
        assert!(dfa.num_states() >= 2);
        // [], [other], [el], [el, other] accepted; [el, el], [el, other, el] rejected.
        assert!(dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[1]));
        assert!(dfa.accepts_word(&[0]));
        assert!(dfa.accepts_word(&[0, 1]));
        assert!(!dfa.accepts_word(&[0, 0]));
        assert!(!dfa.accepts_word(&[0, 1, 0]));
    }

    #[test]
    fn inclusion_between_dfas() {
        let mut o = SyntacticOracle;
        let at_most_one = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let no_insert_el = Sfa::globally(Sfa::not(ins_el()));
        let d_strict = Dfa::build(&no_insert_el, &alphabet(), &mut o, 1000).unwrap();
        let d_weak = Dfa::build(&at_most_one, &alphabet(), &mut o, 1000).unwrap();
        // never inserting el ⊆ inserting at most once
        assert!(d_strict.included_in(&d_weak).is_ok());
        // the converse fails, with a counterexample containing an insert of el
        let cex = d_weak.included_in(&d_strict).unwrap_err();
        assert!(cex.contains(&0));
    }

    #[test]
    fn universe_dfa_accepts_everything() {
        let mut o = SyntacticOracle;
        let dfa = Dfa::build(&Sfa::universe(), &alphabet(), &mut o, 100).unwrap();
        assert!(dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[0, 1, 0, 1]));
        let zero = Dfa::build(&Sfa::Zero, &alphabet(), &mut o, 100).unwrap();
        assert!(zero.included_in(&dfa).is_ok());
        assert!(dfa.included_in(&zero).is_err());
    }

    #[test]
    fn concatenation_with_last() {
        // □⟨⊤⟩ ; (ins_el ∧ LAST): last event inserts el.
        let mut o = SyntacticOracle;
        let a = Sfa::concat(Sfa::universe(), Sfa::and(vec![ins_el(), Sfa::last()]));
        let dfa = Dfa::build(&a, &alphabet(), &mut o, 1000).unwrap();
        assert!(!dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[0]));
        assert!(dfa.accepts_word(&[1, 0]));
        assert!(!dfa.accepts_word(&[0, 1]));
    }

    #[test]
    fn state_bound_is_enforced() {
        let mut o = SyntacticOracle;
        let inv = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let err = Dfa::build(&inv, &alphabet(), &mut o, 1).unwrap_err();
        assert!(matches!(err, DfaBuildError::TooManyStates(1)));
    }
}
