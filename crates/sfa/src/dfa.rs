//! Deterministic finite automata over a minterm alphabet, built with Brzozowski-style
//! derivatives of symbolic-automaton formulas (the "alphabet transformation" of paper
//! Algorithm 2 followed by classical automaton construction).
//!
//! Two consumers drive this module:
//!
//! * [`Dfa::build`] materialises the *complete* DFA of one automaton — every state
//!   reachable from the start formula, with a full transition row per state. This is the
//!   paper-faithful pipeline (build both DFAs, then BFS their product).
//! * [`product_included`] decides `L(A) ⊆ L(B)` *on the fly*: it walks the product
//!   `A × complement(B)` pair by pair, deriving transition rows only for residual states
//!   the product frontier actually reaches, and stops at the first accepting product
//!   state (a counterexample). Neither DFA is ever materialised.
//!
//! Both share one derivative-resolution step ([`resolved_derivative`]) so the run-wide
//! transition memo (see `hat-engine`) serves them interchangeably.

use crate::ast::{Sfa, SymbolicEvent};
use crate::minterm::Minterm;
use crate::subsume::{Subsumer, SubsumptionMode};
use hat_logic::Formula;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Decides whether a minterm (an equivalence class of concrete events) is covered by a
/// symbolic event or guard. Implementations typically answer by SMT entailment queries.
pub trait TransitionOracle {
    /// Does every event described by `m` match the symbolic event `e`?
    fn event_matches(&mut self, e: &SymbolicEvent, m: &Minterm) -> bool;
    /// Does the (event-independent) guard `phi` hold under the minterm's context valuation?
    fn guard_holds(&mut self, phi: &Formula, m: &Minterm) -> bool;

    /// Looks up a memoised successor for `state × minterm`. A successor is a pure
    /// syntactic function of the state formula and the oracle's answers for the events
    /// and guards occurring in it, so implementations can key a run-wide memo on exactly
    /// that data (α-renamed) and share transitions across structurally equal
    /// sub-automata. `None` (the default) computes the derivative.
    fn derivative_lookup(&mut self, state: &Sfa, m: &Minterm) -> Option<Sfa> {
        let _ = (state, m);
        None
    }

    /// Memoises a computed successor for later [`TransitionOracle::derivative_lookup`]s.
    fn derivative_store(&mut self, state: &Sfa, m: &Minterm, succ: &Sfa) {
        let _ = (state, m, succ);
    }

    /// Looks up a persisted simulation verdict `L(a) ⊆ L(b)` over `alphabet` (see
    /// [`crate::subsume`]). The verdict is a semantic fact about the α-renamed
    /// (residual pair, alphabet), so implementations can key a cross-run memo on exactly
    /// that data. `None` (the default) makes the walk compute the fixpoint locally.
    fn subsumption_lookup(&mut self, a: &Sfa, b: &Sfa, alphabet: &[Minterm]) -> Option<bool> {
        let _ = (a, b, alphabet);
        None
    }

    /// Persists a definite simulation verdict for later
    /// [`TransitionOracle::subsumption_lookup`]s. Implementations must refuse to store
    /// when a context-dependent SMT fallback fired during the surrounding walk (the
    /// `shape_key` discipline): the rows the verdict was computed from would no longer
    /// be a pure function of the key.
    fn subsumption_store(&mut self, a: &Sfa, b: &Sfa, alphabet: &[Minterm], verdict: bool) {
        let _ = (a, b, alphabet, verdict);
    }
}

/// Errors raised while constructing a DFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfaBuildError {
    /// The derivative construction exceeded the state bound (the formula is too complex).
    TooManyStates(usize),
}

impl fmt::Display for DfaBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfaBuildError::TooManyStates(n) => {
                write!(f, "derivative construction exceeded {n} states")
            }
        }
    }
}

impl std::error::Error for DfaBuildError {}

/// A complete DFA over a finite minterm alphabet. State 0 is the initial state.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The formula labelling each state (its residual language).
    pub states: Vec<Sfa>,
    /// Whether each state accepts (i.e. its residual language contains the empty trace).
    pub accepting: Vec<bool>,
    /// `transitions[s][c]` is the successor of state `s` on alphabet symbol `c`.
    pub transitions: Vec<Vec<usize>>,
}

/// Whether the automaton accepts the empty trace (`ν` in derivative terminology).
pub fn nullable(a: &Sfa) -> bool {
    match a {
        Sfa::Zero | Sfa::Event(_) | Sfa::Guard(_) | Sfa::Until(_, _) => false,
        Sfa::Epsilon | Sfa::Star(_) => true,
        Sfa::Not(x) => !nullable(x),
        Sfa::And(parts) => parts.iter().all(nullable),
        Sfa::Or(parts) => parts.iter().any(nullable),
        Sfa::Concat(x, y) => nullable(x) && nullable(y),
        // Positions past the end of a trace behave like the empty suffix (see `accept`).
        Sfa::Next(x) => nullable(x),
    }
}

/// The Brzozowski derivative of `a` with respect to the minterm `m`: a formula accepted by
/// exactly the traces `α` such that `e·α` is accepted by `a` for events `e` in class `m`.
pub fn derivative(a: &Sfa, m: &Minterm, oracle: &mut dyn TransitionOracle) -> Sfa {
    match a {
        Sfa::Zero | Sfa::Epsilon => Sfa::Zero,
        Sfa::Event(e) => {
            if e.op == m.op && oracle.event_matches(e, m) {
                Sfa::universe()
            } else {
                Sfa::Zero
            }
        }
        Sfa::Guard(phi) => {
            if oracle.guard_holds(phi, m) {
                Sfa::universe()
            } else {
                Sfa::Zero
            }
        }
        Sfa::Not(x) => Sfa::not(derivative(x, m, oracle)),
        Sfa::And(parts) => Sfa::and(parts.iter().map(|p| derivative(p, m, oracle)).collect()),
        Sfa::Or(parts) => Sfa::or(parts.iter().map(|p| derivative(p, m, oracle)).collect()),
        Sfa::Concat(x, y) => {
            let left = Sfa::concat(derivative(x, m, oracle), (**y).clone());
            if nullable(x) {
                Sfa::or(vec![left, derivative(y, m, oracle)])
            } else {
                left
            }
        }
        Sfa::Next(x) => (**x).clone(),
        Sfa::Until(x, y) => {
            let dy = derivative(y, m, oracle);
            let dx = derivative(x, m, oracle);
            Sfa::or(vec![dy, Sfa::and(vec![dx, a.clone()])])
        }
        Sfa::Star(x) => Sfa::concat(derivative(x, m, oracle), a.clone()),
    }
}

/// Resolves the successor of `state` under `m`: answered from the oracle's transition
/// memo when possible, derived (and stored) otherwise. The result is always in
/// [`Sfa::alpha_normal`] form — memoised successors come back with the caller's
/// free-variable names but were sorted under the storer's, and fresh derivatives are
/// normalised before being stored — so callers can use it directly for state identity.
pub fn resolved_derivative(state: &Sfa, m: &Minterm, oracle: &mut dyn TransitionOracle) -> Sfa {
    match oracle.derivative_lookup(state, m) {
        Some(d) => d.alpha_normal(),
        None => {
            let d = derivative(state, m, oracle).alpha_normal();
            oracle.derivative_store(state, m, &d);
            d
        }
    }
}

/// One side of the lazy product walk: the residual states discovered so far (always in
/// α-normal form) and their transition rows, filled only when the product frontier first
/// visits a state.
struct LazySide {
    states: Vec<Sfa>,
    index: BTreeMap<Sfa, usize>,
    rows: Vec<Option<Vec<usize>>>,
}

impl LazySide {
    fn new(start: Sfa) -> LazySide {
        let mut index = BTreeMap::new();
        index.insert(start.clone(), 0);
        LazySide {
            states: vec![start],
            index,
            rows: vec![None],
        }
    }

    /// Ensures the transition row of state `s` is derived; read it back through
    /// [`LazySide::row`]. Split from the read so callers can hold two sides' rows by
    /// shared reference at once (the derivation needs `&mut self`).
    fn ensure_row(
        &mut self,
        s: usize,
        alphabet: &[Minterm],
        oracle: &mut dyn TransitionOracle,
        max_states: usize,
    ) -> Result<(), DfaBuildError> {
        if self.rows[s].is_some() {
            return Ok(());
        }
        let formula = self.states[s].clone();
        let mut row = Vec::with_capacity(alphabet.len());
        for m in alphabet {
            let d = resolved_derivative(&formula, m, oracle);
            let target = match self.index.get(&d) {
                Some(&t) => t,
                None => {
                    let t = self.states.len();
                    if t >= max_states {
                        return Err(DfaBuildError::TooManyStates(max_states));
                    }
                    self.states.push(d.clone());
                    self.index.insert(d, t);
                    self.rows.push(None);
                    t
                }
            };
            row.push(target);
        }
        self.rows[s] = Some(row);
        Ok(())
    }

    /// The transition row of state `s`; [`LazySide::ensure_row`] must have run first.
    fn row(&self, s: usize) -> &[usize] {
        self.rows[s].as_deref().expect("row derived by ensure_row")
    }

    /// Number of states discovered.
    fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions actually derived (filled rows × alphabet size).
    fn num_transitions(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.as_ref().map(Vec::len).unwrap_or(0))
            .sum()
    }

    /// The discovered states, for the subsumption order.
    fn states(&self) -> &[Sfa] {
        &self.states
    }

    /// The (partially derived) transition rows, for the subsumption order.
    fn rows(&self) -> &[Option<Vec<usize>>] {
        &self.rows
    }
}

/// The outcome of one on-the-fly product walk (see [`product_included`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductRun {
    /// Whether `L(A) ⊆ L(B)` over the given alphabet (no accepting product state).
    pub included: bool,
    /// Distinct product states the walk explored (enqueued) before it finished or
    /// exited early. Pairs dropped by subsumption are not counted — under
    /// [`SubsumptionMode::Off`] this is exactly the number of distinct pairs derived.
    pub product_states: usize,
    /// Residual states of `A` discovered by the frontier.
    pub left_states: usize,
    /// Residual states of `B` discovered by the frontier.
    pub right_states: usize,
    /// Transitions derived on `A`'s side (filled rows × alphabet symbols).
    pub left_transitions: usize,
    /// Transitions derived on `B`'s side.
    pub right_transitions: usize,
    /// Candidate-pair × antichain-member subsumption comparisons performed.
    pub subsumption_checks: usize,
    /// Derived pairs dropped because a visited pair subsumes them.
    pub subsumed_pairs: usize,
    /// Simulation verdicts answered from the persistent memo.
    pub simulation_memo_hits: usize,
}

/// Decides `L(a) ⊆ L(b)` over the minterm alphabet by on-the-fly emptiness of the
/// product `a × complement(b)`, without materialising either DFA.
///
/// In the Brzozowski representation determinisation is implicit (a formula's derivative
/// is again a single formula) and complementation is nullability negation, so the
/// "subset construction driven by the product frontier" degenerates to a breadth-first
/// walk over pairs of residual formulas: a pair `(ra, rb)` is *accepting* — a
/// counterexample trace leads to it — iff `ra` accepts the empty suffix and `rb` does
/// not. Transition rows are derived only for residual states the frontier actually
/// reaches, and the walk returns at the first accepting pair, so failing checks touch a
/// fraction of the state space the materialised pipeline would build.
///
/// The walk explores exactly the reachable pairs the materialised product
/// ([`Dfa::included_in`] over two [`Dfa::build`] results) explores, in the same
/// breadth-first order, so whenever both pipelines complete they return the same
/// verdict (the differential harnesses in `tests/` and the suite enforce this). The one
/// asymmetry is the state bound: an early counterexample can let the walk refute an
/// instance whose complete builds would exceed `max_states` — see
/// [`crate::inclusion::InclusionMode`].
pub fn product_included(
    a: &Sfa,
    b: &Sfa,
    alphabet: &[Minterm],
    oracle: &mut dyn TransitionOracle,
    max_states: usize,
) -> Result<ProductRun, DfaBuildError> {
    product_included_with(a, b, alphabet, oracle, max_states, SubsumptionMode::Off)
}

/// [`product_included`] with a configurable antichain subsumption order (see
/// [`crate::subsume`]): the visited set is kept as an antichain of product pairs, and a
/// newly-derived pair is dropped when a visited pair subsumes it — its A-residual
/// language shrinks and its B-residual language grows, so exploring it cannot reveal a
/// new counterexample. All modes are verdict-identical; subsumption only shrinks the
/// explored pair set (and with it the rows that have to be derived). A subsumed
/// accepting pair forces its (already enqueued) subsumer to be accepting, so early exit
/// happens no later, and the pruned walk derives a subset of the unpruned walk's rows,
/// so it can never hit a state bound the unpruned walk would not.
pub fn product_included_with(
    a: &Sfa,
    b: &Sfa,
    alphabet: &[Minterm],
    oracle: &mut dyn TransitionOracle,
    max_states: usize,
    subsume: SubsumptionMode,
) -> Result<ProductRun, DfaBuildError> {
    let mut left = LazySide::new(a.alpha_normal());
    let mut right = LazySide::new(b.alpha_normal());
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut antichain: Vec<(usize, usize)> = Vec::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut subsumer = Subsumer::new(subsume);
    seen.insert((0, 0));
    antichain.push((0, 0));
    queue.push_back((0, 0));
    let mut included = true;
    while let Some((sa, sb)) = queue.pop_front() {
        if nullable(&left.states[sa]) && !nullable(&right.states[sb]) {
            included = false;
            break;
        }
        left.ensure_row(sa, alphabet, oracle, max_states)?;
        right.ensure_row(sb, alphabet, oracle, max_states)?;
        for (&na, &nb) in left.row(sa).iter().zip(right.row(sb)) {
            if !seen.insert((na, nb)) {
                continue;
            }
            if subsumer.subsumed(
                na,
                nb,
                &antichain,
                left.states(),
                left.rows(),
                right.states(),
                right.rows(),
                alphabet,
                oracle,
            ) {
                continue;
            }
            antichain.push((na, nb));
            queue.push_back((na, nb));
        }
    }
    Ok(ProductRun {
        included,
        product_states: antichain.len(),
        left_states: left.num_states(),
        right_states: right.num_states(),
        left_transitions: left.num_transitions(),
        right_transitions: right.num_transitions(),
        subsumption_checks: subsumer.stats.subsumption_checks,
        subsumed_pairs: subsumer.stats.subsumed_pairs,
        simulation_memo_hits: subsumer.stats.simulation_memo_hits,
    })
}

impl Dfa {
    /// Builds the complete DFA of `a` over the alphabet `alphabet`.
    pub fn build(
        a: &Sfa,
        alphabet: &[Minterm],
        oracle: &mut dyn TransitionOracle,
        max_states: usize,
    ) -> Result<Dfa, DfaBuildError> {
        // Every state is kept in α-normal form so that residuals that differ only in
        // event binder spelling (including memoised successors, which are stored
        // binder-canonically) share one state.
        let a = a.alpha_normal();
        let mut states: Vec<Sfa> = vec![a.clone()];
        let mut index: BTreeMap<Sfa, usize> = BTreeMap::new();
        index.insert(a.clone(), 0);
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut work = vec![0usize];
        while let Some(s) = work.pop() {
            if transitions.len() <= s {
                transitions.resize(states.len(), Vec::new());
            }
            if !transitions[s].is_empty() {
                continue;
            }
            let formula = states[s].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for m in alphabet {
                let d = resolved_derivative(&formula, m, oracle);
                let target = match index.get(&d) {
                    Some(&t) => t,
                    None => {
                        let t = states.len();
                        if t >= max_states {
                            return Err(DfaBuildError::TooManyStates(max_states));
                        }
                        states.push(d.clone());
                        index.insert(d, t);
                        work.push(t);
                        t
                    }
                };
                row.push(target);
            }
            if transitions.len() < states.len() {
                transitions.resize(states.len(), Vec::new());
            }
            transitions[s] = row;
        }
        if transitions.len() < states.len() {
            transitions.resize(states.len(), Vec::new());
        }
        // Any state left without a row (unreachable duplicates) gets a self-loop row.
        let alphabet_len = alphabet.len();
        for (s, row) in transitions.iter_mut().enumerate() {
            if row.is_empty() && alphabet_len > 0 {
                *row = vec![s; alphabet_len];
            }
        }
        let accepting = states.iter().map(nullable).collect();
        Ok(Dfa {
            states,
            accepting,
            transitions,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (states × alphabet symbols actually stored).
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Runs the DFA on a word of alphabet-symbol indices.
    pub fn accepts_word(&self, word: &[usize]) -> bool {
        let mut s = 0usize;
        for &c in word {
            s = self.transitions[s][c];
        }
        self.accepting[s]
    }

    /// Checks `L(self) ⊆ L(other)`; both DFAs must be over the same alphabet.
    /// Returns a counterexample word on failure.
    pub fn included_in(&self, other: &Dfa) -> Result<(), Vec<usize>> {
        let alphabet_len = self.transitions.first().map(Vec::len).unwrap_or(0);
        let mut seen = std::collections::BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0usize, 0usize, Vec::new()));
        seen.insert((0usize, 0usize));
        while let Some((sa, sb, word)) = queue.pop_front() {
            if self.accepting[sa] && !other.accepting[sb] {
                return Err(word);
            }
            for c in 0..alphabet_len {
                let na = self.transitions[sa][c];
                let nb = other.transitions[sb][c];
                if seen.insert((na, nb)) {
                    let mut w = word.clone();
                    w.push(c);
                    queue.push_back((na, nb, w));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Atom, Term};

    /// A purely syntactic oracle for tests: a minterm matches a symbolic event iff every
    /// atom of the event's qualifier appears positively in the minterm (after the canonical
    /// renaming already used to build the minterm), and guards are evaluated the same way.
    #[derive(Default)]
    struct SyntacticOracle;

    fn atom_holds(m: &Minterm, atom: &Atom) -> bool {
        m.assignment.iter().any(|(a, v)| a == atom && *v)
    }

    impl TransitionOracle for SyntacticOracle {
        fn event_matches(&mut self, e: &SymbolicEvent, m: &Minterm) -> bool {
            let renamed = e.phi.rename_free_vars(&|v: &str| {
                if v == e.result {
                    Some(crate::minterm::res_name())
                } else {
                    e.args
                        .iter()
                        .position(|x| x == v)
                        .map(crate::minterm::arg_name)
                }
            });
            match renamed {
                Formula::True => true,
                Formula::Atom(a) => atom_holds(m, &a),
                Formula::And(fs) => fs.iter().all(|f| match f {
                    Formula::Atom(a) => atom_holds(m, a),
                    Formula::True => true,
                    _ => false,
                }),
                _ => false,
            }
        }
        fn guard_holds(&mut self, phi: &Formula, m: &Minterm) -> bool {
            match phi {
                Formula::True => true,
                Formula::Atom(a) => atom_holds(m, a),
                _ => false,
            }
        }
    }

    fn ins_el() -> Sfa {
        Sfa::event(
            "insert",
            vec!["x".into()],
            "v",
            Formula::eq(Term::var("x"), Term::var("el")),
        )
    }

    /// Alphabet with two minterms: insert of el (index 0), insert of something else (1).
    fn alphabet() -> Vec<Minterm> {
        let lit = Atom::Eq(Term::var("#arg0"), Term::var("el"));
        vec![
            Minterm {
                op: "insert".into(),
                assignment: vec![(lit.clone(), true)],
            },
            Minterm {
                op: "insert".into(),
                assignment: vec![(lit, false)],
            },
        ]
    }

    #[test]
    fn nullable_matches_acceptance_of_empty_trace() {
        assert!(nullable(&Sfa::universe()));
        assert!(nullable(&Sfa::Epsilon));
        assert!(!nullable(&ins_el()));
        assert!(!nullable(&Sfa::eventually(ins_el())));
        assert!(nullable(&Sfa::globally(ins_el())));
        assert!(nullable(&Sfa::last()));
    }

    #[test]
    fn derivative_of_event_literal() {
        let mut o = SyntacticOracle;
        let a = ins_el();
        let d_match = derivative(&a, &alphabet()[0], &mut o);
        assert!(d_match.is_universe());
        let d_miss = derivative(&a, &alphabet()[1], &mut o);
        assert_eq!(d_miss, Sfa::Zero);
    }

    #[test]
    fn dfa_for_uniqueness_invariant() {
        // I = □(ins_el ⇒ ◯¬♦ins_el): at most one insert of el.
        let inv = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let mut o = SyntacticOracle;
        let dfa = Dfa::build(&inv, &alphabet(), &mut o, 1000).unwrap();
        assert!(dfa.num_states() >= 2);
        // [], [other], [el], [el, other] accepted; [el, el], [el, other, el] rejected.
        assert!(dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[1]));
        assert!(dfa.accepts_word(&[0]));
        assert!(dfa.accepts_word(&[0, 1]));
        assert!(!dfa.accepts_word(&[0, 0]));
        assert!(!dfa.accepts_word(&[0, 1, 0]));
    }

    #[test]
    fn inclusion_between_dfas() {
        let mut o = SyntacticOracle;
        let at_most_one = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let no_insert_el = Sfa::globally(Sfa::not(ins_el()));
        let d_strict = Dfa::build(&no_insert_el, &alphabet(), &mut o, 1000).unwrap();
        let d_weak = Dfa::build(&at_most_one, &alphabet(), &mut o, 1000).unwrap();
        // never inserting el ⊆ inserting at most once
        assert!(d_strict.included_in(&d_weak).is_ok());
        // the converse fails, with a counterexample containing an insert of el
        let cex = d_weak.included_in(&d_strict).unwrap_err();
        assert!(cex.contains(&0));
    }

    #[test]
    fn universe_dfa_accepts_everything() {
        let mut o = SyntacticOracle;
        let dfa = Dfa::build(&Sfa::universe(), &alphabet(), &mut o, 100).unwrap();
        assert!(dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[0, 1, 0, 1]));
        let zero = Dfa::build(&Sfa::Zero, &alphabet(), &mut o, 100).unwrap();
        assert!(zero.included_in(&dfa).is_ok());
        assert!(dfa.included_in(&zero).is_err());
    }

    #[test]
    fn concatenation_with_last() {
        // □⟨⊤⟩ ; (ins_el ∧ LAST): last event inserts el.
        let mut o = SyntacticOracle;
        let a = Sfa::concat(Sfa::universe(), Sfa::and(vec![ins_el(), Sfa::last()]));
        let dfa = Dfa::build(&a, &alphabet(), &mut o, 1000).unwrap();
        assert!(!dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[0]));
        assert!(dfa.accepts_word(&[1, 0]));
        assert!(!dfa.accepts_word(&[0, 1]));
    }

    #[test]
    fn product_walk_agrees_with_materialised_inclusion() {
        let mut o = SyntacticOracle;
        let at_most_one = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let no_insert_el = Sfa::globally(Sfa::not(ins_el()));
        let universe = Sfa::universe();
        let cases = [
            (&no_insert_el, &at_most_one),
            (&at_most_one, &no_insert_el),
            (&at_most_one, &universe),
            (&universe, &at_most_one),
        ];
        for (a, b) in cases {
            let da = Dfa::build(a, &alphabet(), &mut o, 1000).unwrap();
            let db = Dfa::build(b, &alphabet(), &mut o, 1000).unwrap();
            let run = product_included(a, b, &alphabet(), &mut o, 1000).unwrap();
            assert_eq!(
                run.included,
                da.included_in(&db).is_ok(),
                "product walk diverged on {a} ⊆ {b}"
            );
            // The lazy sides can only discover states the complete builds contain.
            assert!(run.left_states <= da.num_states());
            assert!(run.right_states <= db.num_states());
        }
    }

    #[test]
    fn failing_product_walk_exits_before_materialising_the_state_space() {
        let mut o = SyntacticOracle;
        let at_most_one = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let no_insert_el = Sfa::globally(Sfa::not(ins_el()));
        // at_most_one ⊄ no_insert_el: the first insert of el is already a counterexample.
        let run = product_included(&at_most_one, &no_insert_el, &alphabet(), &mut o, 1000).unwrap();
        assert!(!run.included);
        let da = Dfa::build(&at_most_one, &alphabet(), &mut o, 1000).unwrap();
        let db = Dfa::build(&no_insert_el, &alphabet(), &mut o, 1000).unwrap();
        assert!(
            run.left_transitions + run.right_transitions
                < da.num_transitions() + db.num_transitions(),
            "early exit must derive fewer transitions than the two complete builds"
        );
    }

    #[test]
    fn product_walk_respects_the_state_bound() {
        let mut o = SyntacticOracle;
        let inv = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        // A passing check must explore the whole product, so `inv`'s side outgrows a
        // one-state bound. (A failing check can exit before ever hitting the bound.)
        let err = product_included(&inv, &Sfa::universe(), &alphabet(), &mut o, 1).unwrap_err();
        assert!(matches!(err, DfaBuildError::TooManyStates(1)));
    }

    #[test]
    fn state_bound_is_enforced() {
        let mut o = SyntacticOracle;
        let inv = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let err = Dfa::build(&inv, &alphabet(), &mut o, 1).unwrap_err();
        assert!(matches!(err, DfaBuildError::TooManyStates(1)));
    }
}
