//! Denotational trace acceptance: the judgement `α, i ⊨ A` of paper Fig. 7.
//!
//! This is the *semantics* of symbolic automata on concrete traces. The type checker never
//! uses it (it reasons symbolically through minterms and DFAs); it is used by the
//! interpreter-based tests and examples to validate that checked programs really do produce
//! traces accepted by their representation invariants (Corollary 4.9, empirically).

use crate::ast::Sfa;
use crate::event::{Event, Trace};
use hat_logic::{Constant, EvalCtx, EvalError, Ident, Interpretation};
use std::collections::BTreeMap;

/// A model for evaluating qualifiers on concrete events: an interpretation of method
/// predicates / pure functions plus bindings for the context variables mentioned by the
/// automaton (ghost variables, function parameters).
#[derive(Debug, Clone, Default)]
pub struct TraceModel {
    /// Interpretation of method predicates and pure functions.
    pub interp: Interpretation,
    /// Bindings for context variables.
    pub bindings: BTreeMap<Ident, Constant>,
}

impl TraceModel {
    /// Creates a model with the given interpretation and no context bindings.
    pub fn new(interp: Interpretation) -> Self {
        TraceModel {
            interp,
            bindings: BTreeMap::new(),
        }
    }

    /// Binds a context variable.
    pub fn bind(mut self, var: impl Into<Ident>, c: Constant) -> Self {
        self.bindings.insert(var.into(), c);
        self
    }

    fn event_ctx(&self, args: &[Ident], result: &Ident, event: &Event) -> Option<EvalCtx> {
        if args.len() != event.args.len() {
            return None;
        }
        let mut ctx = EvalCtx::new(self.interp.clone());
        for (k, v) in &self.bindings {
            ctx.bind(k.clone(), v.clone());
        }
        for (name, value) in args.iter().zip(event.args.iter()) {
            ctx.bind(name.clone(), value.clone());
        }
        ctx.bind(result.clone(), event.result.clone());
        Some(ctx)
    }

    fn plain_ctx(&self) -> EvalCtx {
        let mut ctx = EvalCtx::new(self.interp.clone());
        for (k, v) in &self.bindings {
            ctx.bind(k.clone(), v.clone());
        }
        ctx
    }
}

/// Does the trace `α` satisfy the automaton `A` (i.e. `α ∈ L(A)`, acceptance at index 0)?
pub fn accepts(model: &TraceModel, trace: &Trace, a: &Sfa) -> Result<bool, EvalError> {
    sat_at(model, trace.events(), 0, a)
}

/// The indexed judgement `α, i ⊨ A` over a slice of events (the slice is the whole trace).
pub fn sat_at(model: &TraceModel, events: &[Event], i: usize, a: &Sfa) -> Result<bool, EvalError> {
    let len = events.len();
    match a {
        Sfa::Zero => Ok(false),
        Sfa::Epsilon => Ok(i >= len),
        Sfa::Event(e) => {
            if i >= len {
                return Ok(false);
            }
            let event = &events[i];
            if event.op != e.op {
                return Ok(false);
            }
            match model.event_ctx(&e.args, &e.result, event) {
                None => Ok(false),
                Some(ctx) => ctx.eval_formula(&e.phi),
            }
        }
        Sfa::Guard(phi) => {
            if i >= len {
                return Ok(false);
            }
            model.plain_ctx().eval_formula(phi)
        }
        Sfa::Not(inner) => Ok(!sat_at(model, events, i, inner)?),
        Sfa::And(parts) => {
            for p in parts {
                if !sat_at(model, events, i, p)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Sfa::Or(parts) => {
            for p in parts {
                if sat_at(model, events, i, p)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Sfa::Concat(a1, a2) => {
            // α[i..len] = α1 α2 with α1 ∈ L(A1) and α2 ∈ L(A2).
            for j in i..=len {
                let first = &events[i..j];
                let second = &events[j..];
                if sat_at(model, first, 0, a1)? && sat_at(model, second, 0, a2)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Sfa::Next(inner) => {
            if i >= len {
                // Position past the end of the trace behaves like the empty suffix.
                sat_at(model, events, len, inner)
            } else {
                sat_at(model, events, i + 1, inner)
            }
        }
        Sfa::Until(a1, a2) => {
            for j in i..len {
                if sat_at(model, events, j, a2)? {
                    let mut all = true;
                    for k in i..j {
                        if !sat_at(model, events, k, a1)? {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        Sfa::Star(inner) => {
            if i >= len {
                return Ok(true);
            }
            // Try to peel a non-empty prefix accepted by `inner`.
            for j in (i + 1)..=len {
                let first = &events[i..j];
                if sat_at(model, first, 0, inner)? && sat_at(model, events, j, a)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Formula, Term};

    fn put(k: &str, v: &str) -> Event {
        Event::new(
            "put",
            vec![Constant::atom(k), Constant::atom(v)],
            Constant::Unit,
        )
    }

    fn exists(k: &str, r: bool) -> Event {
        Event::new("exists", vec![Constant::atom(k)], Constant::Bool(r))
    }

    fn fs_model() -> TraceModel {
        TraceModel::new(Interpretation::filesystem())
    }

    /// `⟨put key val = v | key = p⟩` with context variable `p`.
    fn put_key_eq_p() -> Sfa {
        Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::eq(Term::var("key"), Term::var("p")),
        )
    }

    #[test]
    fn single_event_matching() {
        let model = fs_model().bind("p", Constant::atom("/a"));
        let t = Trace::from_events(vec![put("/a", "dir:a")]);
        assert!(accepts(&model, &t, &put_key_eq_p()).unwrap());
        let t2 = Trace::from_events(vec![put("/b", "dir:b")]);
        assert!(!accepts(&model, &t2, &put_key_eq_p()).unwrap());
        // Different operator never matches.
        let t3 = Trace::from_events(vec![exists("/a", true)]);
        assert!(!accepts(&model, &t3, &put_key_eq_p()).unwrap());
    }

    #[test]
    fn event_only_constrains_first_position() {
        let model = fs_model().bind("p", Constant::atom("/a"));
        // first event matches, remainder unconstrained
        let t = Trace::from_events(vec![put("/a", "dir:a"), put("/zzz", "file:9")]);
        assert!(accepts(&model, &t, &put_key_eq_p()).unwrap());
        // empty trace never satisfies an event literal
        assert!(!accepts(&model, &Trace::new(), &put_key_eq_p()).unwrap());
    }

    #[test]
    fn eventually_and_globally() {
        let model = fs_model().bind("p", Constant::atom("/a"));
        let ev = Sfa::eventually(put_key_eq_p());
        let glob = Sfa::globally(put_key_eq_p());
        let t = Trace::from_events(vec![put("/x", "dir:x"), put("/a", "dir:a")]);
        assert!(accepts(&model, &t, &ev).unwrap());
        assert!(!accepts(&model, &t, &glob).unwrap());
        let t_all = Trace::from_events(vec![put("/a", "dir:1"), put("/a", "dir:2")]);
        assert!(accepts(&model, &t_all, &glob).unwrap());
        // The empty trace satisfies □ but not ♦.
        assert!(accepts(&model, &Trace::new(), &glob).unwrap());
        assert!(!accepts(&model, &Trace::new(), &ev).unwrap());
    }

    #[test]
    fn last_modality_pins_trace_length() {
        let model = fs_model().bind("p", Constant::atom("/a"));
        let exactly_one = Sfa::and(vec![put_key_eq_p(), Sfa::last()]);
        assert!(accepts(
            &model,
            &Trace::from_events(vec![put("/a", "dir:a")]),
            &exactly_one
        )
        .unwrap());
        assert!(!accepts(
            &model,
            &Trace::from_events(vec![put("/a", "dir:a"), put("/b", "dir:b")]),
            &exactly_one
        )
        .unwrap());
    }

    #[test]
    fn concatenation_splits_the_trace() {
        let model = fs_model().bind("p", Constant::atom("/a"));
        // □⟨⊤⟩ ; (put p ∧ LAST): trace ends with a put of p.
        let ends_with_put_p =
            Sfa::concat(Sfa::universe(), Sfa::and(vec![put_key_eq_p(), Sfa::last()]));
        let good = Trace::from_events(vec![put("/x", "dir:x"), put("/a", "dir:a")]);
        let bad = Trace::from_events(vec![put("/a", "dir:a"), put("/x", "dir:x")]);
        assert!(accepts(&model, &good, &ends_with_put_p).unwrap());
        assert!(!accepts(&model, &bad, &ends_with_put_p).unwrap());
    }

    #[test]
    fn until_semantics() {
        let model = fs_model();
        // ¬⟨put .. = v | isDel(val)⟩ U ⟨put .. | isDir(val)⟩
        let del = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::pred("isDel", vec![Term::var("val")]),
        );
        let dir = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::pred("isDir", vec![Term::var("val")]),
        );
        let u = Sfa::until(Sfa::not(del), dir);
        let ok = Trace::from_events(vec![put("/a", "file:1"), put("/b", "dir:2")]);
        assert!(accepts(&model, &ok, &u).unwrap());
        let bad = Trace::from_events(vec![put("/a", "del:1"), put("/b", "dir:2")]);
        assert!(!accepts(&model, &bad, &u).unwrap());
        let never = Trace::from_events(vec![put("/a", "file:1")]);
        assert!(!accepts(&model, &never, &u).unwrap());
    }

    #[test]
    fn next_shifts_position() {
        let model = fs_model().bind("p", Constant::atom("/a"));
        let f = Sfa::next(put_key_eq_p());
        let t = Trace::from_events(vec![put("/zzz", "dir:z"), put("/a", "dir:a")]);
        assert!(accepts(&model, &t, &f).unwrap());
        let t2 = Trace::from_events(vec![put("/a", "dir:a"), put("/zzz", "dir:z")]);
        assert!(!accepts(&model, &t2, &f).unwrap());
    }

    #[test]
    fn uniqueness_invariant_of_the_set_adt() {
        // I_Set(el) = □(⟨insert x = v | x = el⟩ ⇒ ◯¬♦⟨insert x = v | x = el⟩)
        let ins_el = || {
            Sfa::event(
                "insert",
                vec!["x".into()],
                "v",
                Formula::eq(Term::var("x"), Term::var("el")),
            )
        };
        let inv = Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ));
        let model = TraceModel::new(Interpretation::new()).bind("el", Constant::Int(7));
        let insert = |n: i64| Event::new("insert", vec![Constant::Int(n)], Constant::Unit);
        let ok = Trace::from_events(vec![insert(7), insert(3), insert(5)]);
        assert!(accepts(&model, &ok, &inv).unwrap());
        let dup = Trace::from_events(vec![insert(7), insert(3), insert(7)]);
        assert!(!accepts(&model, &dup, &inv).unwrap());
        // duplicates of a *different* element do not violate the invariant for el = 7
        let dup_other = Trace::from_events(vec![insert(3), insert(3)]);
        assert!(accepts(&model, &dup_other, &inv).unwrap());
    }

    #[test]
    fn guard_checks_context_only() {
        let model = fs_model().bind("p", Constant::atom("/"));
        let g = Sfa::globally(Sfa::guard(Formula::pred("isRoot", vec![Term::var("p")])));
        let t = Trace::from_events(vec![put("/x", "dir:x"), put("/y", "dir:y")]);
        assert!(accepts(&model, &t, &g).unwrap());
        let model2 = fs_model().bind("p", Constant::atom("/a"));
        assert!(!accepts(&model2, &t, &g).unwrap());
        // On the empty trace □⟨φ⟩ holds vacuously.
        assert!(accepts(&model2, &Trace::new(), &g).unwrap());
    }

    #[test]
    fn star_accepts_repetitions() {
        let model = fs_model();
        let one_put = Sfa::and(vec![
            Sfa::event("put", vec!["key".into(), "val".into()], "v", Formula::True),
            Sfa::last(),
        ]);
        let puts_only = Sfa::star(one_put);
        let t = Trace::from_events(vec![put("/a", "x"), put("/b", "y"), put("/c", "z")]);
        assert!(accepts(&model, &t, &puts_only).unwrap());
        let t2 = Trace::from_events(vec![put("/a", "x"), exists("/a", true)]);
        assert!(!accepts(&model, &t2, &puts_only).unwrap());
        assert!(accepts(&model, &Trace::new(), &puts_only).unwrap());
    }
}
