//! Minterm construction (paper §5.1, Algorithm 1).
//!
//! Symbolic automata have an infinite alphabet (all possible concrete events). To reduce
//! language inclusion to a classical finite-automaton check, the alphabet is partitioned
//! into finitely many equivalence classes called *minterms*: maximal satisfiable boolean
//! combinations of the literals appearing in the automata (and typing context), one family
//! per effectful operator. Satisfiability of each combination is established with the SMT
//! solver — these are the `#SAT` queries reported in the paper's evaluation.
//!
//! # Enumeration strategies
//!
//! Two enumeration strategies produce that alphabet, selected by [`EnumerationMode`]:
//!
//! * **Naive** (the paper's reading of Algorithm 1): a depth-first walk over the literal
//!   assignment tree issuing one standalone SMT query per node. Unsatisfiable subtrees are
//!   abandoned early, but every query repeats the whole solver pipeline — simplification,
//!   quantifier elimination, axiom instantiation, CNF construction — and in a mostly
//!   satisfiable literal space the query count still grows as `O(2^n)`.
//! * **Incremental** (the default): one scoped solver session per operator
//!   ([`hat_logic::Solver::scoped`]) preprocesses the context and the literal pool once;
//!   the search tree then lives inside the session's DPLL search, where assigned literals
//!   branch one at a time and a falsified clause prunes an entire subtree without a new
//!   query. Each incremental check returns a *witness*: a full, theory-consistent literal
//!   projection, i.e. one satisfiable leaf. Blocking each witness and re-checking
//!   enumerates exactly the satisfiable minterms in `|minterms| + 1` checks — the query
//!   count is proportional to the satisfiable frontier, not the candidate space.
//!
//! Both strategies provably produce the same minterm set: the incremental session is
//! built over the same ground-term basis a naive *leaf* query uses (the context plus the
//! whole literal pool), so a full assignment is satisfiable in the session iff the naive
//! leaf query says so — and the interior of the naive tree only ever prunes assignments
//! whose every completion is unsatisfiable. The differential harness in
//! `tests/minterm_differential.rs` enforces this equivalence.

use crate::ast::{OpSig, Sfa};
use crate::inclusion::{SolverOracle, VarCtx};
use hat_logic::{Atom, Formula, Ident, Sort};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// How [`build_minterms`] establishes satisfiability of candidate literal assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumerationMode {
    /// One standalone SMT query per node of the assignment tree.
    Naive,
    /// One scoped incremental session per operator; checks proportional to the
    /// satisfiable frontier. Falls back to naive when the oracle cannot provide a
    /// scoped session.
    #[default]
    Incremental,
}

/// Canonical name of the `i`-th argument of an event inside minterm literals.
pub fn arg_name(i: usize) -> Ident {
    format!("#arg{i}")
}

/// Canonical name of the result of an event inside minterm literals.
pub fn res_name() -> Ident {
    "#res".to_string()
}

/// An equivalence class of concrete events of one operator: a truth assignment to the
/// literals relevant to that operator.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Minterm {
    /// The operator this minterm belongs to.
    pub op: String,
    /// Literal polarities over canonical event-variable names (`#arg0`, ..., `#res`)
    /// and context variables.
    pub assignment: Vec<(Atom, bool)>,
}

impl Minterm {
    /// The conjunction of the (signed) literals of this minterm.
    pub fn formula(&self) -> Formula {
        Formula::and(
            self.assignment
                .iter()
                .map(|(a, v)| {
                    let f = Formula::Atom(a.clone());
                    if *v {
                        f
                    } else {
                        Formula::not(f)
                    }
                })
                .collect(),
        )
    }

    /// The projection of the assignment onto the given (uniform) literals, used to group
    /// minterms by context-literal valuation.
    pub fn project(&self, literals: &[Atom]) -> Vec<(Atom, bool)> {
        self.assignment
            .iter()
            .filter(|(a, _)| literals.contains(a))
            .cloned()
            .collect()
    }
}

/// The finite alphabet obtained by alphabet transformation: all satisfiable minterms,
/// together with the subset of literals that do not mention event-local variables
/// ("uniform" literals, whose value cannot change within one trace).
#[derive(Debug, Clone, Default)]
pub struct MintermSet {
    /// All satisfiable minterms, across operators.
    pub minterms: Vec<Minterm>,
    /// Literals over context variables only.
    pub uniform_literals: Vec<Atom>,
    /// Number of unsatisfiable branches abandoned during enumeration: pruned subtrees of
    /// the naive walk, or learned conflicts plus closing-unsat answers of the
    /// incremental search.
    pub pruned: usize,
    /// Number of incremental scoped-session checks issued (0 in naive mode, where all
    /// work is visible through the oracle's query count instead).
    pub enum_queries: usize,
    /// Whether this set was answered from a minterm-set memo rather than enumerated.
    pub from_memo: bool,
}

impl MintermSet {
    /// The distinct uniform-literal valuations realised by the minterms. Each valuation
    /// corresponds to one iteration of the outer loop of Algorithm 1 (one `φ_Γ`).
    pub fn uniform_groups(&self) -> Vec<Vec<(Atom, bool)>> {
        let mut groups: Vec<Vec<(Atom, bool)>> = Vec::new();
        for m in &self.minterms {
            let proj = m.project(&self.uniform_literals);
            if !groups.contains(&proj) {
                groups.push(proj);
            }
        }
        if groups.is_empty() {
            groups.push(Vec::new());
        }
        groups
    }

    /// Indices of the minterms belonging to a uniform group.
    pub fn group_indices(&self, group: &[(Atom, bool)]) -> Vec<usize> {
        self.minterms
            .iter()
            .enumerate()
            .filter(|(_, m)| m.project(&self.uniform_literals) == group)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Collects the literals relevant to each operator from the given automata, following
/// `GetLits` of the paper: literals qualifying events of that operator, literals of guard
/// atoms, and literals of the typing context.
#[derive(Debug, Default)]
pub struct LiteralPool {
    /// Per-operator event-local literals (canonical names).
    pub per_op: Vec<(String, Vec<Atom>)>,
    /// Literals mentioning only context variables.
    pub uniform: Vec<Atom>,
}

impl LiteralPool {
    /// Gathers literals from the context facts and a list of automata.
    pub fn collect(ctx: &VarCtx, automata: &[&Sfa]) -> Self {
        let mut pool = LiteralPool::default();
        for fact in &ctx.facts {
            let mut atoms = Vec::new();
            fact.collect_atoms(&mut atoms);
            for a in atoms {
                pool.add_uniform(a);
            }
        }
        for a in automata {
            pool.visit(a);
        }
        pool.derive_bridges();
        pool
    }

    /// Derives "bridge" literals between context terms: if one symbolic event constrains an
    /// argument with `x = t₁` and another event of the same operator constrains the same
    /// argument with `x = t₂`, the relation between `t₁` and `t₂` (which is constant along a
    /// trace) determines whether one concrete event can match both. These equalities play
    /// the role of the context-literal valuations `φ_Γ` enumerated by the outer loop of the
    /// paper's Algorithm 1; without them the finite-alphabet abstraction would admit traces
    /// that assume `t₁ = t₂` at one position and `t₁ ≠ t₂` at another.
    fn derive_bridges(&mut self) {
        use hat_logic::Term;
        let mut bridges: Vec<Atom> = Vec::new();
        for (_, lits) in &self.per_op {
            // Group the context-side terms by the event variable they are equated with.
            let mut by_var: Vec<(Ident, Vec<Term>)> = Vec::new();
            for lit in lits {
                if let Atom::Eq(a, b) = lit {
                    let (event_var, ctx_term) = match (a, b) {
                        (Term::Var(x), t) if x.starts_with('#') && !mentions_event_var(t) => {
                            (x.clone(), t.clone())
                        }
                        (t, Term::Var(x)) if x.starts_with('#') && !mentions_event_var(t) => {
                            (x.clone(), t.clone())
                        }
                        _ => continue,
                    };
                    match by_var.iter_mut().find(|(v, _)| *v == event_var) {
                        Some((_, terms)) => {
                            if !terms.contains(&ctx_term) {
                                terms.push(ctx_term);
                            }
                        }
                        None => by_var.push((event_var, vec![ctx_term])),
                    }
                }
            }
            for (_, terms) in by_var {
                for i in 0..terms.len() {
                    for j in (i + 1)..terms.len() {
                        let bridge = Atom::Eq(terms[i].clone(), terms[j].clone());
                        if !bridges.contains(&bridge) {
                            bridges.push(bridge);
                        }
                    }
                }
            }
        }
        for b in bridges {
            self.add_uniform(b);
        }
    }

    fn add_uniform(&mut self, a: Atom) {
        if is_trivial(&a) {
            return;
        }
        if !self.uniform.contains(&a) {
            self.uniform.push(a);
        }
    }

    fn add_for_op(&mut self, op: &str, a: Atom) {
        if is_trivial(&a) {
            return;
        }
        if let Some((_, v)) = self.per_op.iter_mut().find(|(o, _)| o == op) {
            if !v.contains(&a) {
                v.push(a);
            }
        } else {
            self.per_op.push((op.to_string(), vec![a]));
        }
    }

    fn visit(&mut self, a: &Sfa) {
        match a {
            Sfa::Zero | Sfa::Epsilon => {}
            Sfa::Event(e) => {
                // Canonicalise event-local names so that literals of different symbolic
                // events over the same operator can be compared.
                let renamed = e.phi.rename_free_vars(&|v: &str| {
                    if v == e.result {
                        Some(res_name())
                    } else {
                        e.args.iter().position(|x| x == v).map(arg_name)
                    }
                });
                let mut atoms = Vec::new();
                renamed.collect_atoms(&mut atoms);
                for atom in atoms {
                    let mut vars = BTreeSet::new();
                    atom.collect_vars(&mut vars);
                    if vars.iter().any(|v| v.starts_with('#')) {
                        self.add_for_op(&e.op, atom);
                    } else {
                        self.add_uniform(atom);
                    }
                }
            }
            Sfa::Guard(phi) => {
                let mut atoms = Vec::new();
                phi.collect_atoms(&mut atoms);
                for a in atoms {
                    self.add_uniform(a);
                }
            }
            Sfa::Not(x) | Sfa::Next(x) | Sfa::Star(x) => self.visit(x),
            Sfa::And(parts) | Sfa::Or(parts) => {
                for p in parts {
                    self.visit(p);
                }
            }
            Sfa::Concat(x, y) | Sfa::Until(x, y) => {
                self.visit(x);
                self.visit(y);
            }
        }
    }
}

fn is_trivial(a: &Atom) -> bool {
    match a {
        Atom::Eq(l, r) => l == r,
        _ => false,
    }
}

/// Whether a term mentions a canonical event-local variable (`#arg0`, ..., `#res`).
fn mentions_event_var(t: &hat_logic::Term) -> bool {
    t.free_vars().iter().any(|v| v.starts_with('#'))
}

/// Builds the satisfiable minterms of the given automata under the typing context, with
/// the default (incremental) enumeration mode. See [`build_minterms_with`].
pub fn build_minterms(
    ctx: &VarCtx,
    ops: &[OpSig],
    automata: &[&Sfa],
    oracle: &mut dyn SolverOracle,
) -> MintermSet {
    build_minterms_with(ctx, ops, automata, oracle, EnumerationMode::default())
}

/// Builds the satisfiable minterms of the given automata under the typing context.
///
/// Every declared operator in `ops` gets a family of minterms (operators with no literals
/// get a single unconstrained minterm, so that events of "irrelevant" operators can still
/// appear in traces). Unsatisfiable boolean combinations are pruned eagerly; the strategy
/// for establishing satisfiability is chosen by `mode` (see the module docs).
///
/// Oracles that support minterm-set memoisation (see
/// [`crate::inclusion::MemoQuery::Minterms`]) can answer the whole construction from a
/// memo when a structurally equal alphabet transformation — same context, same
/// operators, same literal pool up to α-renaming — has already been enumerated.
pub fn build_minterms_with(
    ctx: &VarCtx,
    ops: &[OpSig],
    automata: &[&Sfa],
    oracle: &mut dyn SolverOracle,
    mode: EnumerationMode,
) -> MintermSet {
    use crate::inclusion::{MemoAnswer, MemoKind, MemoQuery};
    let pool = LiteralPool::collect(ctx, automata);
    let memoised = oracle.memoises(MemoKind::Minterms);
    if memoised {
        let query = MemoQuery::Minterms {
            ctx,
            ops,
            pool: &pool,
        };
        if let Some(MemoAnswer::Minterms(cached)) = oracle.memo_lookup(&query) {
            // A memo hit costs no enumeration work; the counters describe this call, not
            // the call that originally built the set.
            let mut cached = cached.into_owned();
            cached.enum_queries = 0;
            cached.pruned = 0;
            cached.from_memo = true;
            return cached;
        }
    }
    let mut set = MintermSet {
        uniform_literals: pool.uniform.clone(),
        ..MintermSet::default()
    };

    for op in ops {
        // Event-local literals for this operator + all uniform literals.
        let mut literals: Vec<Atom> = pool
            .per_op
            .iter()
            .find(|(o, _)| o == &op.name)
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        for u in &pool.uniform {
            if !literals.contains(u) {
                literals.push(u.clone());
            }
        }

        // Sort environment: context variables plus canonical event variables.
        let mut vars: Vec<(Ident, Sort)> = ctx.vars.clone();
        for (i, (_, sort)) in op.args.iter().enumerate() {
            vars.push((arg_name(i), sort.clone()));
        }
        vars.push((res_name(), op.ret.clone()));

        let incremental = mode == EnumerationMode::Incremental
            && enumerate_incremental(ctx, oracle, &vars, &literals, &op.name, &mut set);
        if !incremental {
            let mut assignment: Vec<(Atom, bool)> = Vec::new();
            enumerate(
                ctx,
                oracle,
                &vars,
                &literals,
                0,
                &mut assignment,
                &op.name,
                &mut set,
            );
        }
    }
    if memoised {
        let query = MemoQuery::Minterms {
            ctx,
            ops,
            pool: &pool,
        };
        oracle.memo_store(
            &query,
            &MemoAnswer::Minterms(std::borrow::Cow::Borrowed(&set)),
        );
    }
    set
}

/// Incremental enumeration of one operator's minterms over a scoped solver session.
/// Returns `false` when the oracle cannot provide a session (the caller falls back to the
/// naive walk).
///
/// Each successful check yields a witness projection — one satisfiable leaf — which is
/// recorded and blocked; the session's internal search prunes unsatisfiable subtrees by
/// clause propagation instead of per-node queries. When every boolean combination has
/// been found the closing unsatisfiability check is skipped (the space is exhausted by
/// counting), which keeps the incremental check count at or below the naive query count
/// even for literal-free operators.
fn enumerate_incremental(
    ctx: &VarCtx,
    oracle: &mut dyn SolverOracle,
    vars: &[(Ident, Sort)],
    literals: &[Atom],
    op: &str,
    out: &mut MintermSet,
) -> bool {
    let Some(mut session) = oracle.scoped_session(vars, &ctx.facts, literals) else {
        return false;
    };
    let exhaustive = literals.len() < usize::BITS as usize - 1;
    let mut found: Vec<Vec<bool>> = Vec::new();
    loop {
        if exhaustive && found.len() == 1usize << literals.len() {
            break; // every combination is satisfiable; nothing left to close.
        }
        let conflicts_before = session.conflicts();
        match session.check() {
            None => {
                out.pruned += session.conflicts() - conflicts_before + 1;
                break;
            }
            Some(projection) => {
                out.pruned += session.conflicts() - conflicts_before;
                session.block(&projection);
                found.push(projection);
            }
        }
    }
    out.enum_queries += session.checks();

    // Emit in the naive depth-first order (true explored before false at every level) so
    // both modes produce bit-identical minterm sets.
    found.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (true, false) => return Ordering::Less,
                (false, true) => return Ordering::Greater,
                _ => {}
            }
        }
        Ordering::Equal
    });
    for projection in found {
        out.minterms.push(Minterm {
            op: op.to_string(),
            assignment: literals.iter().cloned().zip(projection).collect(),
        });
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    ctx: &VarCtx,
    oracle: &mut dyn SolverOracle,
    vars: &[(Ident, Sort)],
    literals: &[Atom],
    index: usize,
    assignment: &mut Vec<(Atom, bool)>,
    op: &str,
    out: &mut MintermSet,
) {
    // Check that the partial assignment is still satisfiable together with the context.
    let mut facts = ctx.facts.clone();
    facts.push(
        Minterm {
            op: op.to_string(),
            assignment: assignment.clone(),
        }
        .formula(),
    );
    if !oracle.is_sat(vars, &facts) {
        out.pruned += 1;
        return;
    }
    if index == literals.len() {
        out.minterms.push(Minterm {
            op: op.to_string(),
            assignment: assignment.clone(),
        });
        return;
    }
    for value in [true, false] {
        assignment.push((literals[index].clone(), value));
        enumerate(ctx, oracle, vars, literals, index + 1, assignment, op, out);
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inclusion::tests_support::PlainOracle;
    use hat_logic::Term;

    fn kv_ops() -> Vec<OpSig> {
        vec![
            OpSig::new(
                "put",
                vec![
                    ("key".into(), Sort::named("Path.t")),
                    ("val".into(), Sort::named("Bytes.t")),
                ],
                Sort::Unit,
            ),
            OpSig::new(
                "exists",
                vec![("key".into(), Sort::named("Path.t"))],
                Sort::Bool,
            ),
        ]
    }

    #[test]
    fn literal_pool_separates_event_and_uniform_literals() {
        let a = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::and(vec![
                Formula::eq(Term::var("key"), Term::var("p")),
                Formula::pred("isRoot", vec![Term::var("p")]),
            ]),
        );
        let ctx = VarCtx::new(vec![("p".into(), Sort::named("Path.t"))], vec![]);
        let pool = LiteralPool::collect(&ctx, &[&a]);
        assert_eq!(pool.per_op.len(), 1);
        assert_eq!(pool.per_op[0].0, "put");
        assert_eq!(pool.per_op[0].1.len(), 1, "key = p is event-local");
        assert_eq!(pool.uniform.len(), 1, "isRoot(p) is uniform");
    }

    #[test]
    fn minterms_partition_each_operator() {
        let a = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "v",
            Formula::eq(Term::var("key"), Term::var("p")),
        );
        let ctx = VarCtx::new(vec![("p".into(), Sort::named("Path.t"))], vec![]);
        let mut oracle = PlainOracle::default();
        let set = build_minterms(&ctx, &kv_ops(), &[&a], &mut oracle);
        // put splits on key = p (2 minterms); exists has no literals of its own but inherits
        // the uniform set (empty here), so it yields exactly 1.
        let put_count = set.minterms.iter().filter(|m| m.op == "put").count();
        let exists_count = set.minterms.iter().filter(|m| m.op == "exists").count();
        assert_eq!(put_count, 2);
        assert_eq!(exists_count, 1);
    }

    #[test]
    fn unsatisfiable_combinations_are_pruned() {
        // key = p and key = q with the context fact p ≠ q: the combination
        // (key = p ∧ key = q) must be pruned.
        let a = Sfa::and(vec![
            Sfa::event(
                "put",
                vec!["key".into(), "val".into()],
                "v",
                Formula::eq(Term::var("key"), Term::var("p")),
            ),
            Sfa::event(
                "put",
                vec!["key".into(), "val".into()],
                "v",
                Formula::eq(Term::var("key"), Term::var("q")),
            ),
        ]);
        let ctx = VarCtx::new(
            vec![
                ("p".into(), Sort::named("Path.t")),
                ("q".into(), Sort::named("Path.t")),
            ],
            vec![Formula::not(Formula::eq(Term::var("p"), Term::var("q")))],
        );
        let mut oracle = PlainOracle::default();
        let ops = vec![OpSig::new(
            "put",
            vec![
                ("key".into(), Sort::named("Path.t")),
                ("val".into(), Sort::named("Bytes.t")),
            ],
            Sort::Unit,
        )];
        let set = build_minterms(&ctx, &ops, &[&a], &mut oracle);
        assert_eq!(
            set.minterms.len(),
            3,
            "2^2 combinations minus the contradictory one"
        );
        assert!(set.pruned >= 1);
    }

    #[test]
    fn uniform_groups_split_on_context_literals() {
        let a = Sfa::or(vec![
            Sfa::globally(Sfa::guard(Formula::pred("isRoot", vec![Term::var("p")]))),
            Sfa::event(
                "put",
                vec!["key".into(), "val".into()],
                "v",
                Formula::eq(Term::var("key"), Term::var("p")),
            ),
        ]);
        let ctx = VarCtx::new(vec![("p".into(), Sort::named("Path.t"))], vec![]);
        let mut oracle = PlainOracle::default();
        let set = build_minterms(&ctx, &kv_ops(), &[&a], &mut oracle);
        let groups = set.uniform_groups();
        assert_eq!(groups.len(), 2, "isRoot(p) true / false");
        for g in groups {
            assert!(!set.group_indices(&g).is_empty());
        }
    }

    #[test]
    fn minterm_formula_is_signed_conjunction() {
        let m = Minterm {
            op: "put".into(),
            assignment: vec![
                (Atom::Pred("isDir".into(), vec![Term::var("#arg1")]), true),
                (Atom::Eq(Term::var("#arg0"), Term::var("p")), false),
            ],
        };
        let f = m.formula();
        assert_eq!(f.literal_count(), 2);
        assert!(f.to_string().contains("isDir"));
        assert!(f.to_string().contains("!("));
    }
}
