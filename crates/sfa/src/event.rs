//! Concrete effect events and traces.

use hat_logic::Constant;
use std::fmt;

/// A concrete effect event `op v̄ = v`: the operator that was invoked, its argument values
/// and the value it returned (paper §3, Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Event {
    /// Name of the effectful operator (e.g. `put`).
    pub op: String,
    /// Argument values.
    pub args: Vec<Constant>,
    /// Result value.
    pub result: Constant,
}

impl Event {
    /// Creates an event.
    pub fn new(op: impl Into<String>, args: Vec<Constant>, result: Constant) -> Self {
        Event {
            op: op.into(),
            args,
            result,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        for a in &self.args {
            write!(f, " {a}")?;
        }
        write!(f, " = {}", self.result)
    }
}

/// A trace: the history of effect events produced by a computation, oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// The empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// A trace from a vector of events.
    pub fn from_events(events: Vec<Event>) -> Self {
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Appends an event (the computation performed one more effect).
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Concatenation of two traces (`α α'` in the paper).
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        Trace { events }
    }

    /// The event at position `i`, if any.
    pub fn get(&self, i: usize) -> Option<&Event> {
        self.events.get(i)
    }

    /// Iterates over events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// The most recent event matching the predicate, searching backwards.
    pub fn last_matching<F: Fn(&Event) -> bool>(&self, pred: F) -> Option<&Event> {
        self.events.iter().rev().find(|e| pred(e))
    }

    /// Whether any event matches the predicate.
    pub fn any<F: Fn(&Event) -> bool>(&self, pred: F) -> bool {
        self.events.iter().any(pred)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(k: &str, v: &str) -> Event {
        Event::new(
            "put",
            vec![Constant::atom(k), Constant::atom(v)],
            Constant::Unit,
        )
    }

    #[test]
    fn display_of_events_and_traces() {
        let e = put("/", "dir:root");
        assert_eq!(e.to_string(), "put \"/\" \"dir:root\" = ()");
        let t = Trace::from_events(vec![e.clone(), put("/a", "file:1")]);
        assert_eq!(
            t.to_string(),
            "[put \"/\" \"dir:root\" = (); put \"/a\" \"file:1\" = ()]"
        );
    }

    #[test]
    fn concat_preserves_order() {
        let t1 = Trace::from_events(vec![put("/", "dir:root")]);
        let t2 = Trace::from_events(vec![put("/a", "dir:a")]);
        let t = t1.concat(&t2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap().args[0], Constant::atom("/"));
        assert_eq!(t.get(1).unwrap().args[0], Constant::atom("/a"));
    }

    #[test]
    fn last_matching_searches_backwards() {
        let t = Trace::from_events(vec![put("/a", "v1"), put("/b", "v2"), put("/a", "v3")]);
        let last_a = t
            .last_matching(|e| e.args[0] == Constant::atom("/a"))
            .unwrap();
        assert_eq!(last_a.args[1], Constant::atom("v3"));
        assert!(t.any(|e| e.args[0] == Constant::atom("/b")));
        assert!(!t.any(|e| e.op == "get"));
    }

    #[test]
    fn push_and_len() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(put("/", "dir:root"));
        assert_eq!(t.len(), 1);
        let collected: Trace = t.iter().cloned().collect();
        assert_eq!(collected, t);
    }
}
