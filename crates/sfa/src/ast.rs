//! The symbolic-automaton formula AST (symbolic LTL on finite traces).

use hat_logic::{Formula, Ident, Sort, Term};
use std::collections::BTreeSet;
use std::fmt;

/// The signature of an effectful operator: argument names/sorts and result sort.
///
/// The inclusion checker needs the full operator alphabet (paper Algorithm 1, line 5) and
/// the argument sorts to type the event variables of minterm satisfiability queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSig {
    /// Operator name (e.g. `put`).
    pub name: String,
    /// Formal argument names and sorts.
    pub args: Vec<(Ident, Sort)>,
    /// Result sort.
    pub ret: Sort,
}

impl OpSig {
    /// Creates an operator signature.
    pub fn new(name: impl Into<String>, args: Vec<(Ident, Sort)>, ret: Sort) -> Self {
        OpSig {
            name: name.into(),
            args,
            ret,
        }
    }
}

/// A symbolic event `⟨op x̄ = ν | φ⟩`: an application of the effectful operator `op` to
/// arguments named `args` producing `result`, constrained by the qualifier `phi`
/// (which may also mention variables of the typing context).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SymbolicEvent {
    /// Operator name.
    pub op: String,
    /// Names binding the operator's arguments inside `phi`.
    pub args: Vec<Ident>,
    /// Name binding the operator's result inside `phi`.
    pub result: Ident,
    /// Qualifier over the arguments, result and context variables.
    pub phi: Formula,
}

impl SymbolicEvent {
    /// Creates a symbolic event.
    pub fn new(
        op: impl Into<String>,
        args: Vec<Ident>,
        result: impl Into<Ident>,
        phi: Formula,
    ) -> Self {
        SymbolicEvent {
            op: op.into(),
            args,
            result: result.into(),
            phi,
        }
    }

    /// The event-local variables (argument names and the result name).
    pub fn local_vars(&self) -> BTreeSet<Ident> {
        let mut s: BTreeSet<Ident> = self.args.iter().cloned().collect();
        s.insert(self.result.clone());
        s
    }

    /// Free context variables of the qualifier (free variables that are not event-local).
    pub fn context_vars(&self) -> BTreeSet<Ident> {
        let locals = self.local_vars();
        self.phi
            .free_vars()
            .into_iter()
            .filter(|v| !locals.contains(v))
            .collect()
    }

    /// Substitutes a context variable by a term inside the qualifier.
    /// Event-local variables are binders and are never substituted; binders that would
    /// capture variables of the replacement term are alpha-renamed first.
    pub fn subst(&self, var: &str, t: &Term) -> SymbolicEvent {
        if self.local_vars().contains(var) {
            return self.clone();
        }
        let mut event = self.clone();
        let replacement_vars = t.free_vars();
        let locals: Vec<Ident> = event.local_vars().into_iter().collect();
        for local in locals {
            if replacement_vars.contains(&local) {
                // Freshen the clashing binder.
                let mut fresh = format!("{local}'");
                while replacement_vars.contains(&fresh)
                    || event.local_vars().contains(&fresh)
                    || event.phi.free_vars().contains(&fresh)
                {
                    fresh.push('\'');
                }
                event.phi = event.phi.subst_var(&local, &Term::Var(fresh.clone()));
                if event.result == local {
                    event.result = fresh.clone();
                }
                for a in &mut event.args {
                    if *a == local {
                        *a = fresh.clone();
                    }
                }
            }
        }
        SymbolicEvent {
            phi: event.phi.subst_var(var, t),
            ..event
        }
    }
}

impl fmt::Display for SymbolicEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.op)?;
        for a in &self.args {
            write!(f, " {a}")?;
        }
        write!(f, " = {} | {}>", self.result, self.phi)
    }
}

/// A symbolic finite automaton, written as a formula of symbolic LTLf
/// (paper Fig. 4, "Symbolic Finite Automata" production).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sfa {
    /// The empty language (no trace accepted). Not part of the surface syntax but needed
    /// internally by derivatives.
    Zero,
    /// The language containing only the empty trace.
    Epsilon,
    /// A symbolic event `⟨op x̄ = ν | φ⟩`: the trace is non-empty and its first event
    /// matches; the remainder of the trace is unconstrained.
    Event(SymbolicEvent),
    /// `⟨φ⟩`: the trace is non-empty and the (event-independent) formula `φ` holds.
    Guard(Formula),
    /// Complement.
    Not(Box<Sfa>),
    /// Intersection.
    And(Vec<Sfa>),
    /// Union.
    Or(Vec<Sfa>),
    /// Concatenation `A; B`.
    Concat(Box<Sfa>, Box<Sfa>),
    /// Temporal next `◯A`.
    Next(Box<Sfa>),
    /// Temporal until `A U B`.
    Until(Box<Sfa>, Box<Sfa>),
    /// Kleene star (used by the `□⟨⊤⟩`-style "any trace" automata and by derivatives).
    Star(Box<Sfa>),
}

impl Sfa {
    /// `⟨op x̄ = ν | φ⟩`.
    pub fn event(
        op: impl Into<String>,
        args: Vec<Ident>,
        result: impl Into<Ident>,
        phi: Formula,
    ) -> Sfa {
        Sfa::Event(SymbolicEvent::new(op, args, result, phi))
    }

    /// `⟨φ⟩`.
    pub fn guard(phi: Formula) -> Sfa {
        Sfa::Guard(phi)
    }

    /// `⟨⊤⟩` — any single event.
    pub fn any_event() -> Sfa {
        Sfa::Guard(Formula::True)
    }

    /// The universal language (any trace), written `□⟨⊤⟩` in the paper.
    pub fn universe() -> Sfa {
        Sfa::Star(Box::new(Sfa::any_event()))
    }

    /// Is this syntactically the universal language?
    pub fn is_universe(&self) -> bool {
        matches!(self, Sfa::Star(inner) if matches!(inner.as_ref(), Sfa::Guard(Formula::True)))
    }

    /// Complement (with light simplification).
    #[allow(clippy::should_implement_trait)] // associated constructor, not operator overloading
    pub fn not(a: Sfa) -> Sfa {
        match a {
            Sfa::Not(inner) => *inner,
            Sfa::Zero => Sfa::universe(),
            other if other.is_universe() => Sfa::Zero,
            other => Sfa::Not(Box::new(other)),
        }
    }

    /// Intersection (flattening, absorbing `Zero` and the universe).
    pub fn and(parts: Vec<Sfa>) -> Sfa {
        let mut out: Vec<Sfa> = Vec::new();
        for p in parts {
            match p {
                Sfa::Zero => return Sfa::Zero,
                other if other.is_universe() => {}
                Sfa::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Sfa::universe(),
            1 => out.into_iter().next().expect("len checked"),
            _ => Sfa::And(out),
        }
    }

    /// Union (flattening, absorbing `Zero` and the universe).
    pub fn or(parts: Vec<Sfa>) -> Sfa {
        let mut out: Vec<Sfa> = Vec::new();
        for p in parts {
            match p {
                Sfa::Zero => {}
                other if other.is_universe() => return Sfa::universe(),
                Sfa::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Sfa::Zero,
            1 => out.into_iter().next().expect("len checked"),
            _ => Sfa::Or(out),
        }
    }

    /// Concatenation `A; B` (right-associated, with absorption of the universe so the
    /// derivative construction cannot grow `□⟨⊤⟩; □⟨⊤⟩; ...` chains without bound).
    pub fn concat(a: Sfa, b: Sfa) -> Sfa {
        match (a, b) {
            (Sfa::Zero, _) | (_, Sfa::Zero) => Sfa::Zero,
            (Sfa::Epsilon, b) => b,
            (a, Sfa::Epsilon) => a,
            (Sfa::Concat(x, y), b) => Sfa::concat(*x, Sfa::concat(*y, b)),
            (a, b) => {
                if a.is_universe() {
                    if b.is_universe() {
                        return b;
                    }
                    if let Sfa::Concat(head, _) = &b {
                        if head.is_universe() {
                            return b;
                        }
                    }
                }
                if let (Sfa::Star(x), Sfa::Star(y)) = (&a, &b) {
                    if x == y {
                        return b;
                    }
                }
                Sfa::Concat(Box::new(a), Box::new(b))
            }
        }
    }

    /// Temporal next `◯A`.
    pub fn next(a: Sfa) -> Sfa {
        Sfa::Next(Box::new(a))
    }

    /// Temporal until `A U B`.
    pub fn until(a: Sfa, b: Sfa) -> Sfa {
        Sfa::Until(Box::new(a), Box::new(b))
    }

    /// Kleene star.
    pub fn star(a: Sfa) -> Sfa {
        match a {
            Sfa::Zero | Sfa::Epsilon => Sfa::Epsilon,
            Sfa::Star(inner) => Sfa::Star(inner),
            other => Sfa::Star(Box::new(other)),
        }
    }

    /// `♦A ≐ ⟨⊤⟩ U A` — eventually.
    pub fn eventually(a: Sfa) -> Sfa {
        Sfa::until(Sfa::any_event(), a)
    }

    /// `□A ≐ ¬♦¬A` — globally.
    pub fn globally(a: Sfa) -> Sfa {
        Sfa::not(Sfa::eventually(Sfa::not(a)))
    }

    /// `LAST ≐ ¬◯⟨⊤⟩` — the current event is the last one.
    pub fn last() -> Sfa {
        Sfa::not(Sfa::next(Sfa::any_event()))
    }

    /// `A ⇒ B ≐ ¬A ∨ B`.
    pub fn implies(a: Sfa, b: Sfa) -> Sfa {
        Sfa::or(vec![Sfa::not(a), b])
    }

    /// Free context variables of the automaton: free variables of qualifiers that are
    /// not bound as event arguments.
    pub fn free_vars(&self) -> BTreeSet<Ident> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut BTreeSet<Ident>) {
        match self {
            Sfa::Zero | Sfa::Epsilon => {}
            Sfa::Event(e) => out.extend(e.context_vars()),
            Sfa::Guard(phi) => out.extend(phi.free_vars()),
            Sfa::Not(a) | Sfa::Next(a) | Sfa::Star(a) => a.collect_free_vars(out),
            Sfa::And(parts) | Sfa::Or(parts) => {
                for p in parts {
                    p.collect_free_vars(out);
                }
            }
            Sfa::Concat(a, b) | Sfa::Until(a, b) => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
        }
    }

    /// Substitutes a context variable by a term in every qualifier.
    pub fn subst(&self, var: &str, t: &Term) -> Sfa {
        match self {
            Sfa::Zero | Sfa::Epsilon => self.clone(),
            Sfa::Event(e) => Sfa::Event(e.subst(var, t)),
            Sfa::Guard(phi) => Sfa::Guard(phi.subst_var(var, t)),
            Sfa::Not(a) => Sfa::not(a.subst(var, t)),
            Sfa::And(parts) => Sfa::and(parts.iter().map(|p| p.subst(var, t)).collect()),
            Sfa::Or(parts) => Sfa::or(parts.iter().map(|p| p.subst(var, t)).collect()),
            Sfa::Concat(a, b) => Sfa::concat(a.subst(var, t), b.subst(var, t)),
            Sfa::Next(a) => Sfa::next(a.subst(var, t)),
            Sfa::Until(a, b) => Sfa::until(a.subst(var, t), b.subst(var, t)),
            Sfa::Star(a) => Sfa::star(a.subst(var, t)),
        }
    }

    /// Applies a substitution for several variables.
    pub fn subst_all<'a>(&self, bindings: impl IntoIterator<Item = (&'a str, &'a Term)>) -> Sfa {
        let mut out = self.clone();
        for (v, t) in bindings {
            out = out.subst(v, t);
        }
        out
    }

    /// Renames free (context) variables through the mapping. Event argument and result
    /// names are binders scoping over their qualifier: they shadow the mapping and are
    /// left untouched. The mapping's target names must not collide with binder names
    /// (callers renaming into `$`-prefixed canonical names, or out of them into ordinary
    /// identifiers, satisfy this by construction).
    pub fn rename_free_vars(&self, f: &dyn Fn(&str) -> Option<Ident>) -> Sfa {
        match self {
            Sfa::Zero | Sfa::Epsilon => self.clone(),
            Sfa::Event(e) => {
                let locals = e.local_vars();
                let phi =
                    e.phi
                        .rename_free_vars(&|v: &str| if locals.contains(v) { None } else { f(v) });
                Sfa::Event(SymbolicEvent {
                    op: e.op.clone(),
                    args: e.args.clone(),
                    result: e.result.clone(),
                    phi,
                })
            }
            Sfa::Guard(phi) => Sfa::Guard(phi.rename_free_vars(f)),
            Sfa::Not(a) => Sfa::Not(Box::new(a.rename_free_vars(f))),
            Sfa::And(parts) => Sfa::And(parts.iter().map(|p| p.rename_free_vars(f)).collect()),
            Sfa::Or(parts) => Sfa::Or(parts.iter().map(|p| p.rename_free_vars(f)).collect()),
            Sfa::Concat(a, b) => Sfa::Concat(
                Box::new(a.rename_free_vars(f)),
                Box::new(b.rename_free_vars(f)),
            ),
            Sfa::Next(a) => Sfa::Next(Box::new(a.rename_free_vars(f))),
            Sfa::Until(a, b) => Sfa::Until(
                Box::new(a.rename_free_vars(f)),
                Box::new(b.rename_free_vars(f)),
            ),
            Sfa::Star(a) => Sfa::Star(Box::new(a.rename_free_vars(f))),
        }
    }

    /// The α-normal form of the automaton: every event's argument and result binders are
    /// renamed to `$q0, $q1, …` *positionally and locally to that event* (free context
    /// variables are untouched; `$` never starts an ordinary identifier, so no capture is
    /// possible), and the tree is rebuilt through the smart constructors so `And`/`Or`
    /// children are re-sorted and re-deduplicated under the canonical binder names.
    ///
    /// Local (per-event) numbering makes the form compositional — the normal form of a
    /// node depends only on the normal forms of its children — so it is idempotent, and
    /// two automata that differ only in event binder spellings normalise to equal values.
    /// The DFA construction normalises every state, so memoised successors (stored
    /// binder-canonically) and freshly computed derivatives can never disagree on state
    /// identity.
    ///
    /// ```
    /// use hat_logic::{Formula, Term};
    /// use hat_sfa::Sfa;
    ///
    /// let spelled = |arg: &str, res: &str| {
    ///     Sfa::event("put", vec![arg.into()], res,
    ///         Formula::eq(Term::var(arg), Term::var("p")))
    /// };
    /// assert_ne!(spelled("key", "v"), spelled("k2", "w"));
    /// assert_eq!(
    ///     spelled("key", "v").alpha_normal(),
    ///     spelled("k2", "w").alpha_normal(),
    /// );
    /// ```
    pub fn alpha_normal(&self) -> Sfa {
        match self {
            Sfa::Zero | Sfa::Epsilon | Sfa::Guard(_) => self.clone(),
            Sfa::Event(e) => {
                let mut map: Vec<(Ident, Ident)> = Vec::new();
                let args: Vec<Ident> = e
                    .args
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        let canon = format!("$q{i}");
                        map.push((a.clone(), canon.clone()));
                        canon
                    })
                    .collect();
                let result = {
                    let canon = format!("$q{}", e.args.len());
                    map.push((e.result.clone(), canon.clone()));
                    canon
                };
                // Later binders shadow earlier ones with the same name (reversed search).
                let phi = e.phi.rename_free_vars(&|v: &str| {
                    map.iter()
                        .rev()
                        .find(|(orig, _)| orig == v)
                        .map(|(_, c)| c.clone())
                });
                Sfa::Event(SymbolicEvent {
                    op: e.op.clone(),
                    args,
                    result,
                    phi,
                })
            }
            Sfa::Not(a) => Sfa::not(a.alpha_normal()),
            Sfa::And(parts) => Sfa::and(parts.iter().map(Sfa::alpha_normal).collect()),
            Sfa::Or(parts) => Sfa::or(parts.iter().map(Sfa::alpha_normal).collect()),
            Sfa::Concat(a, b) => Sfa::concat(a.alpha_normal(), b.alpha_normal()),
            Sfa::Next(a) => Sfa::next(a.alpha_normal()),
            Sfa::Until(a, b) => Sfa::until(a.alpha_normal(), b.alpha_normal()),
            Sfa::Star(a) => Sfa::star(a.alpha_normal()),
        }
    }

    /// Collects the distinct symbolic events and guard formulas of the automaton, in
    /// first-occurrence order. These are exactly the oracle queries a derivative of the
    /// automaton can make: every event/guard of a Brzozowski derivative is a subterm of
    /// the formula it was derived from, so the answers for this list fully determine the
    /// successor of any residual state under a given alphabet symbol.
    pub fn collect_events_guards<'a>(
        &'a self,
        events: &mut Vec<&'a SymbolicEvent>,
        guards: &mut Vec<&'a Formula>,
    ) {
        match self {
            Sfa::Zero | Sfa::Epsilon => {}
            Sfa::Event(e) => {
                if !events.contains(&e) {
                    events.push(e);
                }
            }
            Sfa::Guard(phi) => {
                if !guards.contains(&phi) {
                    guards.push(phi);
                }
            }
            Sfa::Not(a) | Sfa::Next(a) | Sfa::Star(a) => a.collect_events_guards(events, guards),
            Sfa::And(parts) | Sfa::Or(parts) => {
                for p in parts {
                    p.collect_events_guards(events, guards);
                }
            }
            Sfa::Concat(a, b) | Sfa::Until(a, b) => {
                a.collect_events_guards(events, guards);
                b.collect_events_guards(events, guards);
            }
        }
    }

    /// Number of symbolic-event / guard literal occurrences — the paper's `s_I` metric.
    pub fn literal_count(&self) -> usize {
        match self {
            Sfa::Zero | Sfa::Epsilon => 0,
            Sfa::Event(e) => 1.max(e.phi.literal_count()),
            Sfa::Guard(phi) => 1.max(phi.literal_count()),
            Sfa::Not(a) | Sfa::Next(a) | Sfa::Star(a) => a.literal_count(),
            Sfa::And(parts) | Sfa::Or(parts) => parts.iter().map(Sfa::literal_count).sum(),
            Sfa::Concat(a, b) | Sfa::Until(a, b) => a.literal_count() + b.literal_count(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Sfa::Zero | Sfa::Epsilon | Sfa::Event(_) | Sfa::Guard(_) => 1,
            Sfa::Not(a) | Sfa::Next(a) | Sfa::Star(a) => 1 + a.size(),
            Sfa::And(parts) | Sfa::Or(parts) => 1 + parts.iter().map(Sfa::size).sum::<usize>(),
            Sfa::Concat(a, b) | Sfa::Until(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Names of the operators mentioned by symbolic events of the automaton.
    pub fn ops(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_ops(&mut out);
        out
    }

    fn collect_ops(&self, out: &mut BTreeSet<String>) {
        match self {
            Sfa::Zero | Sfa::Epsilon | Sfa::Guard(_) => {}
            Sfa::Event(e) => {
                out.insert(e.op.clone());
            }
            Sfa::Not(a) | Sfa::Next(a) | Sfa::Star(a) => a.collect_ops(out),
            Sfa::And(parts) | Sfa::Or(parts) => {
                for p in parts {
                    p.collect_ops(out);
                }
            }
            Sfa::Concat(a, b) | Sfa::Until(a, b) => {
                a.collect_ops(out);
                b.collect_ops(out);
            }
        }
    }
}

impl fmt::Display for Sfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sfa::Zero => write!(f, "∅"),
            Sfa::Epsilon => write!(f, "ε"),
            Sfa::Event(e) => write!(f, "{e}"),
            Sfa::Guard(phi) => write!(f, "<{phi}>"),
            Sfa::Not(a) => write!(f, "not ({a})"),
            Sfa::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Sfa::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Sfa::Concat(a, b) => write!(f, "({a}; {b})"),
            Sfa::Next(a) => write!(f, "next ({a})"),
            Sfa::Until(a, b) => write!(f, "({a} until {b})"),
            Sfa::Star(a) => write!(f, "({a})*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Term;

    fn put_event(phi: Formula) -> Sfa {
        Sfa::event("put", vec!["key".into(), "val".into()], "v", phi)
    }

    #[test]
    fn smart_constructors_absorb_constants() {
        let e = put_event(Formula::True);
        assert_eq!(Sfa::and(vec![Sfa::Zero, e.clone()]), Sfa::Zero);
        assert_eq!(Sfa::and(vec![Sfa::universe(), e.clone()]), e);
        assert_eq!(Sfa::or(vec![Sfa::Zero, e.clone()]), e);
        assert!(Sfa::or(vec![Sfa::universe(), e.clone()]).is_universe());
        assert_eq!(Sfa::not(Sfa::not(e.clone())), e);
        assert!(Sfa::not(Sfa::Zero).is_universe());
        assert_eq!(Sfa::not(Sfa::universe()), Sfa::Zero);
        assert_eq!(Sfa::concat(Sfa::Epsilon, e.clone()), e);
        assert_eq!(Sfa::concat(e.clone(), Sfa::Zero), Sfa::Zero);
        assert_eq!(Sfa::star(Sfa::Zero), Sfa::Epsilon);
    }

    #[test]
    fn and_or_dedup_and_sort() {
        let e = put_event(Formula::True);
        let f = Sfa::and(vec![e.clone(), e.clone()]);
        assert_eq!(f, e);
        let g = Sfa::or(vec![e.clone(), Sfa::Epsilon, e.clone()]);
        match g {
            Sfa::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn derived_operators_expand_as_in_the_paper() {
        let e = put_event(Formula::True);
        // ♦e = ⟨⊤⟩ U e
        assert_eq!(
            Sfa::eventually(e.clone()),
            Sfa::until(Sfa::any_event(), e.clone())
        );
        // □e = ¬(⟨⊤⟩ U ¬e)
        assert_eq!(
            Sfa::globally(e.clone()),
            Sfa::not(Sfa::until(Sfa::any_event(), Sfa::not(e.clone())))
        );
        // LAST = ¬◯⟨⊤⟩
        assert_eq!(Sfa::last(), Sfa::not(Sfa::next(Sfa::any_event())));
    }

    #[test]
    fn free_vars_exclude_event_locals() {
        let phi = Formula::and(vec![
            Formula::eq(Term::var("key"), Term::var("p")),
            Formula::pred("isDir", vec![Term::var("val")]),
        ]);
        let e = put_event(phi);
        let fv = e.free_vars();
        assert!(fv.contains("p"));
        assert!(!fv.contains("key"));
        assert!(!fv.contains("val"));
    }

    #[test]
    fn substitution_respects_event_binders() {
        let phi = Formula::eq(Term::var("key"), Term::var("p"));
        let e = put_event(phi);
        let s = e.subst("p", &Term::atom("/a"));
        match &s {
            Sfa::Event(ev) => {
                assert_eq!(ev.phi, Formula::eq(Term::var("key"), Term::atom("/a")));
            }
            other => panic!("expected event, got {other}"),
        }
        // substituting the bound arg name must be a no-op
        let t = e.subst("key", &Term::atom("/a"));
        assert_eq!(t, e);
    }

    #[test]
    fn ops_and_literal_count() {
        let inv = Sfa::globally(Sfa::implies(
            Sfa::event(
                "insert",
                vec!["x".into()],
                "v",
                Formula::eq(Term::var("x"), Term::var("el")),
            ),
            Sfa::next(Sfa::not(Sfa::eventually(Sfa::event(
                "insert",
                vec!["x".into()],
                "v",
                Formula::eq(Term::var("x"), Term::var("el")),
            )))),
        ));
        assert!(inv.ops().contains("insert"));
        assert!(inv.literal_count() >= 2);
        assert!(inv.size() > 4);
        assert!(inv.free_vars().contains("el"));
    }

    #[test]
    fn display_is_readable() {
        let e = put_event(Formula::True);
        assert_eq!(e.to_string(), "<put key val = v | true>");
        assert!(Sfa::universe().to_string().contains("*"));
    }
}
