//! # hat-sfa
//!
//! Symbolic finite automata (SFA) for the HAT verifier.
//!
//! SFAs are written as formulas of symbolic linear temporal logic on finite traces
//! (LTLf, De Giacomo & Vardi 2013) whose atoms are *symbolic events*
//! `⟨op x̄ = ν | φ⟩` describing a call to an effectful library operator together with a
//! qualifier over its arguments and result. This crate provides:
//!
//! * concrete [`Event`]s and [`Trace`]s produced by the `hat-lang` interpreter,
//! * the [`Sfa`] formula AST with the paper's derived operators (`♦`, `□`, `LAST`, ...),
//! * the denotational acceptance judgement `α, i ⊨ A` ([`accept`]),
//! * minterm construction over the symbolic alphabet ([`minterm`]),
//! * derivative-based DFA construction over a minterm alphabet ([`dfa`]), both
//!   materialised ([`Dfa::build`]) and as an on-the-fly product walk
//!   ([`dfa::product_included`]),
//! * the language-inclusion check used by HAT subtyping ([`inclusion`]), which mirrors
//!   Algorithm 1 of the paper (including its use of SMT queries to keep only satisfiable
//!   minterms), deciding each per-group problem on the fly by default
//!   ([`InclusionMode`]), with antichain subsumption pruning the product frontier
//!   ([`SubsumptionMode`]).

pub mod accept;
pub mod ast;
pub mod dfa;
pub mod event;
pub mod inclusion;
pub mod minterm;
pub mod subsume;

pub use accept::{accepts, TraceModel};
pub use ast::{OpSig, Sfa, SymbolicEvent};
pub use dfa::{product_included, product_included_with, Dfa, DfaBuildError, ProductRun};
pub use event::{Event, Trace};
pub use inclusion::{
    InclusionChecker, InclusionMode, InclusionStats, MemoAnswer, MemoKind, MemoQuery, SolverOracle,
    VarCtx,
};
pub use minterm::{EnumerationMode, LiteralPool, Minterm, MintermSet};
pub use subsume::{SubsumeStats, SubsumptionMode};
