//! Differential harness for antichain subsumption: the pruned on-the-fly product walk
//! (`--subsume syntactic|simulation`) must produce exactly the verdicts of the
//! unpruned walk (`--subsume off`) while never *enqueuing* more product pairs — and on
//! frontier-heavy shapes it must enqueue strictly fewer. Random configurations come
//! from the same deterministic xorshift stream as the other differential harnesses
//! (`tests/common/mod.rs`); the committed gen corpus adds 64 verdict-known
//! whole-benchmark configurations on top.

use hat_logic::{Solver, Sort};
use hat_sfa::{InclusionChecker, OpSig, SubsumptionMode};

mod common;

use common::{random_case, XorShift};

fn ops() -> Vec<OpSig> {
    vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
        OpSig::new("noop", vec![], Sort::Unit),
    ]
}

const MODES: [SubsumptionMode; 3] = [
    SubsumptionMode::Off,
    SubsumptionMode::Syntactic,
    SubsumptionMode::Simulation,
];

#[test]
fn random_configs_agree_across_all_three_subsumption_modes() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let mut failed_somewhere = false;
    let mut passed_somewhere = false;
    let mut pruned_somewhere = false;
    for case in 0..24 {
        let (ctx, ops, a, b) = random_case(&mut rng, &ops());
        let mut verdicts = Vec::new();
        let mut states = Vec::new();
        for mode in MODES {
            let mut checker = InclusionChecker::new(ops.clone());
            checker.subsume = mode;
            let mut solver = Solver::default();
            let verdict = checker.check(&ctx, &a, &b, &mut solver);
            verdicts.push(verdict);
            states.push(checker.stats.product_states);
            if mode == SubsumptionMode::Off {
                assert_eq!(
                    checker.stats.subsumption_checks, 0,
                    "case {case}: --subsume off must not probe the antichain"
                );
            } else {
                pruned_somewhere |= checker.stats.subsumed_pairs > 0;
            }
        }
        let baseline = verdicts[0].clone();
        for (mode, verdict) in MODES.iter().zip(&verdicts).skip(1) {
            match (&baseline, verdict) {
                (Ok(off), Ok(sub)) => assert_eq!(
                    off,
                    sub,
                    "case {case}: {} changed the verdict of {a} ⊆ {b}",
                    mode.as_str()
                ),
                (Err(_), Err(_)) => {}
                // The one permitted asymmetry: pruning shrinks the frontier, so a walk
                // the unpruned mode aborts at the state bound can complete under
                // subsumption. The reverse is impossible — the pruned walk enqueues a
                // subset of the unpruned walk's pairs.
                (Err(_), Ok(_)) => {}
                (Ok(_), Err(e)) => panic!(
                    "case {case}: {} aborted ({e:?}) an instance the unpruned walk \
                     completed",
                    mode.as_str()
                ),
            }
        }
        if baseline.is_ok() {
            for (mode, &n) in MODES.iter().zip(&states).skip(1) {
                assert!(
                    n <= states[0],
                    "case {case}: {} enqueued {n} product pairs, more than the \
                     unpruned walk's {}",
                    mode.as_str(),
                    states[0]
                );
            }
            failed_somewhere |= matches!(baseline, Ok(false));
            passed_somewhere |= matches!(baseline, Ok(true));
        }
    }
    assert!(
        failed_somewhere && passed_somewhere,
        "the random stream must exercise both verdicts"
    );
    assert!(
        pruned_somewhere,
        "the random stream must make subsumption fire at least once"
    );
}

#[test]
fn committed_gen_corpus_is_verdict_identical_and_never_larger() {
    let mut product_states = [0usize; 3];
    let mut subsumed = [0usize; 3];
    for bench in hat_gen::corpus() {
        let mut verdicts: Vec<Vec<bool>> = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let mut checker = hat_core::Checker::new(bench.delta.clone());
            checker.inclusion.subsume = *mode;
            let mut seen = Vec::new();
            for m in &bench.methods {
                let report = checker
                    .check_method(&m.sig, &m.body)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", bench.adt, bench.library));
                assert_eq!(
                    report.verified,
                    m.expect_verified,
                    "{}/{} {} under --subsume {}",
                    bench.adt,
                    bench.library,
                    m.sig.name,
                    mode.as_str()
                );
                product_states[mi] += report.stats.product_states;
                subsumed[mi] += report.stats.subsumed_pairs;
                seen.push(report.verified);
            }
            verdicts.push(seen);
        }
        assert!(
            verdicts.iter().all(|v| v == &verdicts[0]),
            "{}/{}: modes disagree",
            bench.adt,
            bench.library
        );
    }
    assert_eq!(subsumed[0], 0, "--subsume off must never prune");
    for (mode, &n) in MODES.iter().zip(&product_states).skip(1) {
        assert!(
            n <= product_states[0],
            "--subsume {} enqueued {n} product pairs across the corpus, more than \
             the unpruned walk's {}",
            mode.as_str(),
            product_states[0]
        );
    }
}

#[test]
fn subsumption_strictly_shrinks_a_frontier_heavy_walk() {
    // Scan the shared stream for shapes whose product frontier carries comparable
    // pairs, and require that on at least one of them subsumption both fires and
    // strictly shrinks the walk. The stream is deterministic, so this is a fixed
    // regression anchor: if a refactor stops the pruning from ever firing, this fails.
    let mut rng = XorShift(0x1d872b41dbd8f3a7);
    let mut strict_shrink = false;
    for _ in 0..48 {
        let (ctx, ops, a, b) = random_case(&mut rng, &ops());
        let mut off = InclusionChecker::new(ops.clone());
        off.subsume = SubsumptionMode::Off;
        let mut off_solver = Solver::default();
        let Ok(v_off) = off.check(&ctx, &a, &b, &mut off_solver) else {
            continue;
        };
        let mut sim = InclusionChecker::new(ops);
        assert_eq!(
            sim.subsume,
            SubsumptionMode::Simulation,
            "simulation must be the default"
        );
        let mut sim_solver = Solver::default();
        let v_sim = sim.check(&ctx, &a, &b, &mut sim_solver).expect(
            "the pruned walk enqueues a subset of the unpruned walk's pairs, so it \
             cannot abort where the unpruned walk completed",
        );
        assert_eq!(v_off, v_sim);
        if sim.stats.subsumed_pairs > 0 && sim.stats.product_states < off.stats.product_states {
            strict_shrink = true;
        }
    }
    assert!(
        strict_shrink,
        "no shape in the stream was strictly shrunk by simulation subsumption"
    );
}
