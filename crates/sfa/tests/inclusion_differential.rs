//! Differential harness for the inclusion-decision pipeline: the on-the-fly product walk
//! (the default) must produce exactly the verdicts of the materialising DFA-pair
//! baseline, while a failing check must exit early — visiting strictly fewer product
//! states than the materialised pair builds. Configurations are generated with the same
//! deterministic xorshift stream the other differential harnesses use
//! (`tests/common/mod.rs`).

use hat_logic::{Formula, Solver, Sort, Term};
use hat_sfa::{InclusionChecker, InclusionMode, OpSig, Sfa, VarCtx};

mod common;

use common::{random_case, XorShift};

fn ops() -> Vec<OpSig> {
    vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
        OpSig::new("noop", vec![], Sort::Unit),
    ]
}

#[test]
fn onthefly_and_materialised_inclusion_are_verdict_identical() {
    let mut rng = XorShift(0x1d872b41dbd8f3a7);
    let mut failed_somewhere = false;
    let mut passed_somewhere = false;
    for case in 0..24 {
        let (ctx, ops, a, b) = random_case(&mut rng, &ops());

        let mut materialised_checker = InclusionChecker::new(ops.clone());
        materialised_checker.mode = InclusionMode::Materialise;
        let mut materialised_solver = Solver::default();
        let materialised = materialised_checker.check(&ctx, &a, &b, &mut materialised_solver);

        let mut otf_checker = InclusionChecker::new(ops);
        assert_eq!(
            otf_checker.mode,
            InclusionMode::OnTheFly,
            "on-the-fly must be the default"
        );
        let mut otf_solver = Solver::default();
        let onthefly = otf_checker.check(&ctx, &a, &b, &mut otf_solver);

        match (materialised, onthefly) {
            (Ok(vm), Ok(vo)) => {
                assert_eq!(
                    vm, vo,
                    "case {case}: the product walk changed the verdict of {a} ⊆ {b}"
                );
                failed_somewhere |= !vm;
                passed_somewhere |= vm;
            }
            (Err(_), Err(_)) => continue,
            // The one permitted asymmetry: an early counterexample lets the walk decide
            // an instance whose materialised pipeline exceeds the DFA state bound. The
            // verdict must then be a refutation — a passing walk explores the whole
            // product and would have hit the same bound.
            (Err(_), Ok(vo)) => {
                assert!(
                    !vo,
                    "case {case}: the walk passed an instance the materialised pipeline \
                     could not complete — it must have explored the full product"
                );
                failed_somewhere = true;
                // The aborted pipeline's work counters are partial; skip the
                // construction-work comparison below.
                continue;
            }
            (m, o) => {
                panic!("case {case}: impossible asymmetry: materialised={m:?} onthefly={o:?}")
            }
        }
        // The lazy walk derives rows only for frontier-reached residual states, so it
        // can never do more construction work than the two complete builds.
        assert!(
            otf_checker.stats.fa_states <= materialised_checker.stats.fa_states,
            "case {case}: the walk discovered more states than the complete builds"
        );
        assert!(
            otf_checker.stats.fa_transitions <= materialised_checker.stats.fa_transitions,
            "case {case}: the walk derived more transitions than the complete builds"
        );
        assert_eq!(
            materialised_checker.stats.product_states, 0,
            "the materialised path must not report product states"
        );
    }
    assert!(
        failed_somewhere && passed_somewhere,
        "the random stream must exercise both verdicts"
    );
}

#[test]
fn failing_check_visits_strictly_fewer_product_states_than_the_dfa_pair() {
    // at_most_once ⊄ never: the first insert of el is already a counterexample, so the
    // walk must stop after a handful of product states while the materialised pipeline
    // builds both complete DFAs.
    let ins_el = Sfa::event(
        "insert",
        vec!["x".into()],
        "v",
        Formula::eq(Term::var("x"), Term::var("el")),
    );
    let never = Sfa::globally(Sfa::not(ins_el.clone()));
    let at_most_once = Sfa::globally(Sfa::implies(
        ins_el.clone(),
        Sfa::next(Sfa::not(Sfa::eventually(ins_el))),
    ));
    let ops = vec![
        OpSig::new("insert", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("mem", vec![("x".into(), Sort::Int)], Sort::Bool),
    ];
    let ctx = VarCtx::new(vec![("el".into(), Sort::Int)], vec![]);

    let mut materialised = InclusionChecker::new(ops.clone());
    materialised.mode = InclusionMode::Materialise;
    let mut solver = Solver::default();
    assert!(!materialised
        .check(&ctx, &at_most_once, &never, &mut solver)
        .unwrap());

    let mut onthefly = InclusionChecker::new(ops);
    let mut otf_solver = Solver::default();
    assert!(!onthefly
        .check(&ctx, &at_most_once, &never, &mut otf_solver)
        .unwrap());

    assert!(onthefly.stats.product_states > 0, "the walk must have run");
    assert!(
        onthefly.stats.product_states < materialised.stats.fa_states,
        "early exit must visit fewer product states ({}) than the materialised DFA pair \
         builds ({})",
        onthefly.stats.product_states,
        materialised.stats.fa_states
    );
    assert!(
        onthefly.stats.fa_transitions < materialised.stats.fa_transitions,
        "early exit must derive fewer transitions ({}) than the complete builds ({})",
        onthefly.stats.fa_transitions,
        materialised.stats.fa_transitions
    );
}
