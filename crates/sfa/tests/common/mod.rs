//! Shared deterministic configuration generator for the differential harnesses
//! (`minterm_differential`, `dfa_differential`, `inclusion_differential`).
//!
//! One copy of the xorshift stream and the random-SFA grammar keeps the harnesses from
//! drifting apart: a tweak to the generator reaches every differential test at once.
//! The draw order is part of the contract — the harnesses pin their fixed seeds to
//! streams produced in exactly this order.

#![allow(dead_code)] // each test binary uses a different subset of these helpers

use hat_logic::{Atom, Formula, Sort, Term};
use hat_sfa::{OpSig, Sfa, VarCtx};

/// The deterministic xorshift generator shared across the workspace's randomised
/// harnesses (re-exported from `hat-testkit`, which pins the stream's draw order).
pub use hat_testkit::XorShift;

pub const CTX_VARS: [&str; 3] = ["el", "lo", "hi"];

pub fn random_ctx_term(rng: &mut XorShift) -> Term {
    if rng.below(3) == 0 {
        Term::int(rng.below(3) as i64)
    } else {
        Term::var(CTX_VARS[rng.below(CTX_VARS.len() as u64) as usize])
    }
}

/// A random atom over the event argument `x` and/or the context variables.
pub fn random_atom(rng: &mut XorShift, event_local: bool) -> Atom {
    let l = if event_local {
        Term::var("x")
    } else {
        random_ctx_term(rng)
    };
    let r = random_ctx_term(rng);
    match rng.below(3) {
        0 => Atom::Eq(l, r),
        1 => Atom::Lt(l, r),
        _ => Atom::Le(l, r),
    }
}

pub fn random_fact(rng: &mut XorShift) -> Formula {
    let atom = Formula::Atom(random_atom(rng, false));
    if rng.flip() {
        atom
    } else {
        Formula::not(atom)
    }
}

pub fn random_event(rng: &mut XorShift) -> Sfa {
    let mut conjuncts = Vec::new();
    for _ in 0..=rng.below(2) {
        let f = Formula::Atom(random_atom(rng, true));
        conjuncts.push(if rng.flip() { f } else { Formula::not(f) });
    }
    Sfa::event("tick", vec!["x".into()], "v", Formula::and(conjuncts))
}

pub fn random_sfa(rng: &mut XorShift, depth: u64) -> Sfa {
    if depth == 0 {
        return if rng.flip() {
            random_event(rng)
        } else {
            Sfa::guard(Formula::Atom(random_atom(rng, false)))
        };
    }
    match rng.below(6) {
        0 => Sfa::not(random_sfa(rng, depth - 1)),
        1 => Sfa::globally(random_sfa(rng, depth - 1)),
        2 => Sfa::eventually(random_sfa(rng, depth - 1)),
        3 => Sfa::and(vec![random_sfa(rng, depth - 1), random_sfa(rng, depth - 1)]),
        4 => Sfa::or(vec![random_sfa(rng, depth - 1), random_sfa(rng, depth - 1)]),
        _ => Sfa::concat(random_sfa(rng, depth - 1), random_sfa(rng, depth - 1)),
    }
}

/// One random inclusion problem: an integer context with 0–2 random facts, the given
/// operator alphabet, and two random automata over `tick`. The operator list does not
/// consume randomness, so harnesses with different alphabets share one draw order.
pub fn random_case(rng: &mut XorShift, ops: &[OpSig]) -> (VarCtx, Vec<OpSig>, Sfa, Sfa) {
    let vars: Vec<(String, Sort)> = CTX_VARS
        .iter()
        .map(|v| (v.to_string(), Sort::Int))
        .collect();
    let mut facts = Vec::new();
    for _ in 0..rng.below(3) {
        facts.push(random_fact(rng));
    }
    let ctx = VarCtx::new(vars, facts);
    let a = random_sfa(rng, 2);
    let b = random_sfa(rng, 2);
    (ctx, ops.to_vec(), a, b)
}
