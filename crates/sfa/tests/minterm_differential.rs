//! Differential verdict-equivalence harness: naive vs. incremental minterm enumeration.
//!
//! The incremental enumeration (`EnumerationMode::Incremental`) must be observationally
//! identical to the paper-faithful naive walk: the same minterm sets (bit for bit,
//! including order), the same inclusion verdicts, and never more solver work. This
//! harness generates a deterministic stream of random configurations — contexts, facts,
//! operator signatures and automata — with the same xorshift generator the suite's
//! end-to-end tests use, and checks all three properties on every case.

use hat_logic::{Formula, Solver, Sort, Term};
use hat_sfa::minterm::{build_minterms_with, EnumerationMode, MintermSet};
use hat_sfa::{InclusionChecker, OpSig, Sfa, SolverOracle, VarCtx};

mod common;

use common::{random_case, XorShift};

fn ops() -> Vec<OpSig> {
    vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
    ]
}

/// Naive work = standalone queries; incremental work = standalone queries (fallbacks,
/// transition resolution, …) plus scoped-session checks.
fn total_work(solver: &Solver, set: &MintermSet) -> usize {
    solver.stats.queries + set.enum_queries
}

#[test]
fn minterm_sets_are_bit_identical_across_modes() {
    let mut rng = XorShift(0x2545f4914f6cdd1d);
    for case in 0..32 {
        let (ctx, ops, a, b) = random_case(&mut rng, &ops());
        let mut naive_solver = Solver::default();
        let naive = build_minterms_with(
            &ctx,
            &ops,
            &[&a, &b],
            &mut naive_solver,
            EnumerationMode::Naive,
        );
        let mut inc_solver = Solver::default();
        let incremental = build_minterms_with(
            &ctx,
            &ops,
            &[&a, &b],
            &mut inc_solver,
            EnumerationMode::Incremental,
        );
        assert_eq!(
            naive.minterms, incremental.minterms,
            "case {case}: minterm sets diverged for automata {a} vs {b} (ctx facts {:?})",
            ctx.facts
        );
        assert_eq!(
            naive.uniform_literals, incremental.uniform_literals,
            "case {case}: uniform literal pools diverged"
        );
        assert!(
            total_work(&inc_solver, &incremental) <= total_work(&naive_solver, &naive),
            "case {case}: incremental issued more solver work ({} + {} checks) than naive ({} queries)",
            inc_solver.stats.queries,
            incremental.enum_queries,
            naive_solver.stats.queries,
        );
    }
}

#[test]
fn inclusion_verdicts_are_identical_across_modes() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..16 {
        let (ctx, ops, a, b) = random_case(&mut rng, &ops());
        let mut naive_checker = InclusionChecker::new(ops.clone());
        naive_checker.enumeration = EnumerationMode::Naive;
        let mut naive_solver = Solver::default();
        let naive = naive_checker.check(&ctx, &a, &b, &mut naive_solver);

        let mut inc_checker = InclusionChecker::new(ops);
        inc_checker.enumeration = EnumerationMode::Incremental;
        let mut inc_solver = Solver::default();
        let incremental = inc_checker.check(&ctx, &a, &b, &mut inc_solver);

        match (naive, incremental) {
            (Ok(vn), Ok(vi)) => assert_eq!(
                vn, vi,
                "case {case}: inclusion verdict diverged for {a} ⊆ {b}"
            ),
            (Err(_), Err(_)) => {}
            (n, i) => panic!("case {case}: one mode errored: naive={n:?} incremental={i:?}"),
        }
        assert_eq!(
            naive_checker.stats.minterms, inc_checker.stats.minterms,
            "case {case}: modes built different alphabets"
        );
        let naive_work = naive_solver.stats.queries;
        let inc_work = inc_solver.stats.queries + inc_checker.stats.enum_queries;
        assert!(
            inc_work <= naive_work,
            "case {case}: incremental work {inc_work} exceeds naive {naive_work}"
        );
    }
}

#[test]
fn incremental_reduces_queries_on_a_pruning_heavy_space() {
    // Three events over the same operator argument with pairwise-distinct context terms:
    // most of the 2^n candidate space is unsatisfiable, which is where the incremental
    // search pays off — and the reduction must be at least 3x.
    let mk_event = |rhs: Term| {
        Sfa::event(
            "put",
            vec!["key".into()],
            "v",
            Formula::eq(Term::var("key"), rhs),
        )
    };
    let a = Sfa::and(vec![
        mk_event(Term::var("p")),
        mk_event(Term::var("q")),
        mk_event(Term::var("r")),
        mk_event(Term::int(7)),
    ]);
    let b = Sfa::globally(Sfa::or(vec![
        mk_event(Term::var("p")),
        Sfa::guard(Formula::lt(Term::var("p"), Term::var("q"))),
    ]));
    let ctx = VarCtx::new(
        vec![
            ("p".into(), Sort::Int),
            ("q".into(), Sort::Int),
            ("r".into(), Sort::Int),
        ],
        vec![
            Formula::lt(Term::var("p"), Term::var("q")),
            Formula::lt(Term::var("q"), Term::var("r")),
        ],
    );
    let ops = vec![OpSig::new(
        "put",
        vec![("key".into(), Sort::Int)],
        Sort::Unit,
    )];

    let mut naive_solver = Solver::default();
    let naive = build_minterms_with(
        &ctx,
        &ops,
        &[&a, &b],
        &mut naive_solver,
        EnumerationMode::Naive,
    );
    let mut inc_solver = Solver::default();
    let incremental = build_minterms_with(
        &ctx,
        &ops,
        &[&a, &b],
        &mut inc_solver,
        EnumerationMode::Incremental,
    );
    assert_eq!(naive.minterms, incremental.minterms);
    let naive_work = naive_solver.stats.queries;
    let inc_work = inc_solver.stats.queries + incremental.enum_queries;
    assert!(
        inc_work * 3 <= naive_work,
        "expected a >=3x query reduction, got naive={naive_work} incremental={inc_work}"
    );
}

#[test]
fn oracle_without_scoped_sessions_falls_back_to_naive() {
    /// An oracle that forwards to a solver but refuses scoped sessions.
    struct NoScope(Solver);
    impl SolverOracle for NoScope {
        fn is_sat(&mut self, vars: &[(String, Sort)], facts: &[Formula]) -> bool {
            self.0.is_sat(vars, facts)
        }
        fn entails(&mut self, vars: &[(String, Sort)], facts: &[Formula], goal: &Formula) -> bool {
            SolverOracle::entails(&mut self.0, vars, facts, goal)
        }
        fn query_count(&self) -> usize {
            self.0.query_count()
        }
        fn query_time(&self) -> std::time::Duration {
            self.0.query_time()
        }
    }

    let mut rng = XorShift(0xdeadbeefcafef00d);
    let (ctx, ops, a, b) = random_case(&mut rng, &ops());
    let mut plain = Solver::default();
    let naive = build_minterms_with(&ctx, &ops, &[&a, &b], &mut plain, EnumerationMode::Naive);
    let mut fallback = NoScope(Solver::default());
    let incremental = build_minterms_with(
        &ctx,
        &ops,
        &[&a, &b],
        &mut fallback,
        EnumerationMode::Incremental,
    );
    assert_eq!(naive.minterms, incremental.minterms);
    assert_eq!(
        incremental.enum_queries, 0,
        "fallback must not report scoped checks"
    );
    assert_eq!(fallback.query_count(), plain.query_count());
}
