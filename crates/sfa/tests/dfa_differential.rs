//! Differential harness for the DFA-construction pipeline: per-group alphabet pruning
//! (and the state α-normalisation that backs the transition memo) must be observationally
//! identical to the unpruned path — the same inclusion verdicts and the same DFA state
//! counts, with never more transitions. Configurations are generated with the same
//! deterministic xorshift stream the other differential harnesses use.

use hat_logic::{Atom, Formula, Solver, Sort, Term};
use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn flip(&mut self) -> bool {
        self.below(2) == 0
    }
}

const CTX_VARS: [&str; 3] = ["el", "lo", "hi"];

fn random_ctx_term(rng: &mut XorShift) -> Term {
    if rng.below(3) == 0 {
        Term::int(rng.below(3) as i64)
    } else {
        Term::var(CTX_VARS[rng.below(CTX_VARS.len() as u64) as usize])
    }
}

fn random_atom(rng: &mut XorShift, event_local: bool) -> Atom {
    let l = if event_local {
        Term::var("x")
    } else {
        random_ctx_term(rng)
    };
    let r = random_ctx_term(rng);
    match rng.below(3) {
        0 => Atom::Eq(l, r),
        1 => Atom::Lt(l, r),
        _ => Atom::Le(l, r),
    }
}

fn random_event(rng: &mut XorShift) -> Sfa {
    let mut conjuncts = Vec::new();
    for _ in 0..=rng.below(2) {
        let f = Formula::Atom(random_atom(rng, true));
        conjuncts.push(if rng.flip() { f } else { Formula::not(f) });
    }
    Sfa::event("tick", vec!["x".into()], "v", Formula::and(conjuncts))
}

fn random_sfa(rng: &mut XorShift, depth: u64) -> Sfa {
    if depth == 0 {
        return if rng.flip() {
            random_event(rng)
        } else {
            Sfa::guard(Formula::Atom(random_atom(rng, false)))
        };
    }
    match rng.below(6) {
        0 => Sfa::not(random_sfa(rng, depth - 1)),
        1 => Sfa::globally(random_sfa(rng, depth - 1)),
        2 => Sfa::eventually(random_sfa(rng, depth - 1)),
        3 => Sfa::and(vec![random_sfa(rng, depth - 1), random_sfa(rng, depth - 1)]),
        4 => Sfa::or(vec![random_sfa(rng, depth - 1), random_sfa(rng, depth - 1)]),
        _ => Sfa::concat(random_sfa(rng, depth - 1), random_sfa(rng, depth - 1)),
    }
}

fn random_case(rng: &mut XorShift) -> (VarCtx, Vec<OpSig>, Sfa, Sfa) {
    let vars: Vec<(String, Sort)> = CTX_VARS
        .iter()
        .map(|v| (v.to_string(), Sort::Int))
        .collect();
    let mut facts = Vec::new();
    for _ in 0..rng.below(3) {
        let atom = Formula::Atom(random_atom(rng, false));
        facts.push(if rng.flip() { atom } else { Formula::not(atom) });
    }
    let ctx = VarCtx::new(vars, facts);
    // The `probe` and `noop` operators are referenced by no automaton: their per-group
    // minterm families are exactly what pruning is expected to collapse.
    let ops = vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
        OpSig::new("noop", vec![], Sort::Unit),
    ];
    let a = random_sfa(rng, 2);
    let b = random_sfa(rng, 2);
    (ctx, ops, a, b)
}

#[test]
fn pruned_construction_is_verdict_and_state_count_identical() {
    let mut rng = XorShift(0xc0ffee123456789f);
    let mut pruned_something = false;
    for case in 0..24 {
        let (ctx, ops, a, b) = random_case(&mut rng);

        let mut unpruned_checker = InclusionChecker::new(ops.clone());
        unpruned_checker.prune = false;
        let mut unpruned_solver = Solver::default();
        let unpruned = unpruned_checker.check(&ctx, &a, &b, &mut unpruned_solver);

        let mut pruned_checker = InclusionChecker::new(ops);
        assert!(pruned_checker.prune, "pruning must be the default");
        let mut pruned_solver = Solver::default();
        let pruned = pruned_checker.check(&ctx, &a, &b, &mut pruned_solver);

        match (unpruned, pruned) {
            (Ok(vu), Ok(vp)) => assert_eq!(
                vu, vp,
                "case {case}: pruning changed the verdict of {a} ⊆ {b}"
            ),
            (Err(_), Err(_)) => continue,
            (u, p) => panic!("case {case}: one path errored: unpruned={u:?} pruned={p:?}"),
        }
        assert_eq!(
            unpruned_checker.stats.fa_states, pruned_checker.stats.fa_states,
            "case {case}: pruning changed the reachable state set of {a} ⊆ {b}"
        );
        assert!(
            pruned_checker.stats.fa_transitions <= unpruned_checker.stats.fa_transitions,
            "case {case}: pruning produced more transitions"
        );
        assert_eq!(
            unpruned_checker.stats.alphabet_pruned, 0,
            "the unpruned path must not drop symbols"
        );
        pruned_something |= pruned_checker.stats.alphabet_pruned > 0;
    }
    assert!(
        pruned_something,
        "no case exercised the pruner (unreferenced operators must collapse)"
    );
}

#[test]
fn unreferenced_operators_collapse_to_one_symbol_per_group() {
    // One referenced operator, three irrelevant ones: each group's alphabet must shed
    // the duplicate all-false columns of `probe`/`noop`/`spare`.
    let ev = Sfa::event(
        "tick",
        vec!["x".into()],
        "v",
        Formula::eq(Term::var("x"), Term::var("el")),
    );
    let a = Sfa::globally(Sfa::not(ev.clone()));
    let b = Sfa::globally(Sfa::implies(
        ev.clone(),
        Sfa::next(Sfa::not(Sfa::eventually(ev))),
    ));
    let ctx = VarCtx::new(vec![("el".into(), Sort::Int)], vec![]);
    let ops = vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
        OpSig::new("noop", vec![], Sort::Unit),
        OpSig::new("spare", vec![], Sort::Unit),
    ];
    let mut checker = InclusionChecker::new(ops);
    let mut solver = Solver::default();
    assert!(checker.check(&ctx, &a, &b, &mut solver).unwrap());
    // tick splits on x = el (2 minterms), the three irrelevant operators add one symbol
    // each; the three irrelevant symbols and tick's non-matching one all behave
    // identically, so at least 3 of the 5 columns must be pruned.
    assert!(
        checker.stats.alphabet_pruned >= 3,
        "expected ≥3 pruned symbols, got {}",
        checker.stats.alphabet_pruned
    );
}
