//! Differential harness for the DFA-construction pipeline: per-group alphabet pruning
//! (and the state α-normalisation that backs the transition memo) must be observationally
//! identical to the unpruned path — the same inclusion verdicts and the same DFA state
//! counts, with never more transitions. Configurations are generated with the same
//! deterministic xorshift stream the other differential harnesses use
//! (`tests/common/mod.rs`).

use hat_logic::{Formula, Solver, Sort, Term};
use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};

mod common;

use common::{random_case, XorShift};

fn ops() -> Vec<OpSig> {
    // The `probe` and `noop` operators are referenced by no automaton: their per-group
    // minterm families are exactly what pruning is expected to collapse.
    vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
        OpSig::new("noop", vec![], Sort::Unit),
    ]
}

#[test]
fn pruned_construction_is_verdict_and_state_count_identical() {
    let mut rng = XorShift(0xc0ffee123456789f);
    let mut pruned_something = false;
    for case in 0..24 {
        let (ctx, ops, a, b) = random_case(&mut rng, &ops());

        let mut unpruned_checker = InclusionChecker::new(ops.clone());
        unpruned_checker.prune = false;
        let mut unpruned_solver = Solver::default();
        let unpruned = unpruned_checker.check(&ctx, &a, &b, &mut unpruned_solver);

        let mut pruned_checker = InclusionChecker::new(ops);
        assert!(pruned_checker.prune, "pruning must be the default");
        let mut pruned_solver = Solver::default();
        let pruned = pruned_checker.check(&ctx, &a, &b, &mut pruned_solver);

        match (unpruned, pruned) {
            (Ok(vu), Ok(vp)) => assert_eq!(
                vu, vp,
                "case {case}: pruning changed the verdict of {a} ⊆ {b}"
            ),
            (Err(_), Err(_)) => continue,
            (u, p) => panic!("case {case}: one path errored: unpruned={u:?} pruned={p:?}"),
        }
        assert_eq!(
            unpruned_checker.stats.fa_states, pruned_checker.stats.fa_states,
            "case {case}: pruning changed the reachable state set of {a} ⊆ {b}"
        );
        assert!(
            pruned_checker.stats.fa_transitions <= unpruned_checker.stats.fa_transitions,
            "case {case}: pruning produced more transitions"
        );
        assert_eq!(
            unpruned_checker.stats.alphabet_pruned, 0,
            "the unpruned path must not drop symbols"
        );
        pruned_something |= pruned_checker.stats.alphabet_pruned > 0;
    }
    assert!(
        pruned_something,
        "no case exercised the pruner (unreferenced operators must collapse)"
    );
}

#[test]
fn unreferenced_operators_collapse_to_one_symbol_per_group() {
    // One referenced operator, three irrelevant ones: each group's alphabet must shed
    // the duplicate all-false columns of `probe`/`noop`/`spare`.
    let ev = Sfa::event(
        "tick",
        vec!["x".into()],
        "v",
        Formula::eq(Term::var("x"), Term::var("el")),
    );
    let a = Sfa::globally(Sfa::not(ev.clone()));
    let b = Sfa::globally(Sfa::implies(
        ev.clone(),
        Sfa::next(Sfa::not(Sfa::eventually(ev))),
    ));
    let ctx = VarCtx::new(vec![("el".into(), Sort::Int)], vec![]);
    let ops = vec![
        OpSig::new("tick", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("probe", vec![], Sort::Bool),
        OpSig::new("noop", vec![], Sort::Unit),
        OpSig::new("spare", vec![], Sort::Unit),
    ];
    let mut checker = InclusionChecker::new(ops);
    let mut solver = Solver::default();
    assert!(checker.check(&ctx, &a, &b, &mut solver).unwrap());
    // tick splits on x = el (2 minterms), the three irrelevant operators add one symbol
    // each; the three irrelevant symbols and tick's non-matching one all behave
    // identically, so at least 3 of the 5 columns must be pruned.
    assert!(
        checker.stats.alphabet_pruned >= 3,
        "expected ≥3 pruned symbols, got {}",
        checker.stats.alphabet_pruned
    );
}
