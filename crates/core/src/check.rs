//! The bidirectional HAT type checker (paper §5.2, Fig. 8/15).
//!
//! The checker verifies one ADT method at a time against its HAT-enriched signature
//! (ghost variables, refined parameters, and a pre/postcondition automaton pair — usually
//! both equal to the ADT's representation invariant). It closely tracks the effect context
//! as an automaton: every use of an effectful operator refines that automaton with the
//! operator's postcondition (`ChkEOpApp`), branches refine the typing context with path
//! conditions (`ChkMatch`), and at every tail position the accumulated automaton must be
//! included in the method's postcondition automaton (`ChkSub`, via SFA inclusion).

use crate::abduce::ghost_candidates;
use crate::ctx::TypeCtx;
use crate::delta::{Delta, HoareCase};
use crate::rty::{HType, RType, NU};
use crate::subtype::sub_base;
use hat_lang::{Expr, Value};
use hat_logic::{Constant, Formula, Ident, Solver, Sort, Term};
use hat_sfa::{InclusionChecker, Sfa, SolverOracle};
use std::fmt;
use std::time::{Duration, Instant};

/// The HAT-enriched signature of an ADT method, e.g.
/// `p:Path.t ⇢ path:Path.t → bytes:Bytes.t → [I_FS(p)] bool [I_FS(p)]`.
#[derive(Debug, Clone)]
pub struct MethodSig {
    /// Method name (used in reports).
    pub name: String,
    /// Ghost variables scoping over the whole signature.
    pub ghosts: Vec<(Ident, Sort)>,
    /// Parameters with their refinement types.
    pub params: Vec<(Ident, RType)>,
    /// Precondition automaton (normally the representation invariant).
    pub pre: Sfa,
    /// Result refinement type.
    pub ret: RType,
    /// Postcondition automaton (normally the representation invariant again).
    pub post: Sfa,
}

/// Work counters for one method check — the per-method columns of Tables 1/3/4.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckStats {
    /// Number of SMT queries (`#SAT`).
    pub sat_queries: usize,
    /// Time spent in the SMT solver (`t_SAT`).
    pub sat_time: Duration,
    /// Number of finite-automaton inclusion checks (`#FA⊆` / `#Inc`).
    pub fa_inclusions: usize,
    /// Average number of transitions of the constructed FAs (`avg. s_FA`).
    pub avg_fa_size: f64,
    /// Time spent constructing and comparing FAs (`t_FA⊆`), excluding solver time.
    pub fa_time: Duration,
    /// Total verification time for the method.
    pub total_time: Duration,
    /// Number of operator preconditions that had to be assumed because abduction could not
    /// discharge them (0 for a faithful verification run).
    pub assumed_preconditions: usize,
    /// Number of SMT queries answered from a shared result cache (0 without a caching
    /// oracle; see the `hat-engine` crate).
    pub cache_hits: usize,
    /// Number of SMT queries that reached the underlying decision procedure.
    pub cache_misses: usize,
    /// Number of incremental scoped-session checks issued during minterm enumeration
    /// (0 with naive enumeration, whose work is visible in `sat_queries` instead).
    pub enum_queries: usize,
    /// Number of unsatisfiable enumeration branches abandoned (pruned subtrees).
    pub pruned_subtrees: usize,
    /// Number of alphabet transformations answered from the minterm-set memo.
    pub minterm_memo_hits: usize,
    /// Number of whole automata-inclusion checks answered from the inclusion memo.
    pub inclusion_memo_hits: usize,
    /// Total states of the DFAs constructed for this method.
    pub dfa_states: usize,
    /// Total transitions of the DFAs constructed for this method.
    pub dfa_transitions: usize,
    /// Number of alphabet symbols dropped by per-group pruning before product
    /// construction.
    pub alphabet_pruned: usize,
    /// Number of DFA transitions answered from the run-wide transition memo.
    pub transition_memo_hits: usize,
    /// Number of distinct product states discovered by on-the-fly inclusion walks
    /// (0 when inclusion ran in materialising mode).
    pub product_states: usize,
    /// Number of per-group product walks answered from the DFA-shape memo.
    pub shape_memo_hits: usize,
    /// Number of antichain subsumption probes issued by on-the-fly product walks
    /// (0 with `--subsume off` or in materialising mode).
    pub subsumption_checks: usize,
    /// Number of product pairs dropped by antichain subsumption before exploration.
    pub subsumed_pairs: usize,
    /// Number of simulation-preorder probes answered from the persistent subsumption
    /// memo.
    pub simulation_memo_hits: usize,
    /// Number of shared-tier shard-lock acquisitions the oracle performed for this
    /// method (0 without a tiered oracle). Per-worker local read-through tiers absorb
    /// repeat lookups lock-free, so this drops under `--jobs N` while hit counts stay.
    pub shared_tier_locks: usize,
}

/// The outcome of checking one method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method name.
    pub name: String,
    /// `true` when every proof obligation was discharged.
    pub verified: bool,
    /// Human-readable descriptions of the failed obligations (empty when verified).
    pub failures: Vec<String>,
    /// Work counters.
    pub stats: CheckStats,
    /// Number of control-flow branches of the method body (`#Branch`).
    pub branches: usize,
    /// Number of operator/function applications of the method body (`#App`).
    pub apps: usize,
}

/// Errors that prevent checking from running at all (ill-formed input rather than a failed
/// proof obligation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// An effectful operator has no signature in `Δ`.
    UnknownEffOp(String),
    /// A pure operator has no signature in `Δ` and is not a built-in.
    UnknownPureOp(String),
    /// The program uses a feature outside the supported MNF fragment.
    Unsupported(String),
    /// The DFA construction blew up.
    AutomatonTooLarge(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownEffOp(op) => write!(f, "unknown effectful operator `{op}`"),
            CheckError::UnknownPureOp(op) => write!(f, "unknown pure operator `{op}`"),
            CheckError::Unsupported(m) => write!(f, "unsupported program form: {m}"),
            CheckError::AutomatonTooLarge(m) => write!(f, "automaton construction failed: {m}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// The HAT type checker for one library specification `Δ`.
///
/// The SMT backend is a [`SolverOracle`] trait object: by default a bare
/// [`hat_logic::Solver`], but callers (notably the `hat-engine` crate) can inject a
/// caching or instrumented oracle via [`Checker::with_oracle`].
pub struct Checker {
    /// The library specification (operator signatures and axioms).
    pub delta: Delta,
    /// The SMT backend.
    pub oracle: Box<dyn SolverOracle>,
    /// The SFA inclusion backend.
    pub inclusion: InclusionChecker,
    fresh: usize,
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("delta", &self.delta)
            .field("inclusion", &self.inclusion)
            .finish_non_exhaustive()
    }
}

impl Checker {
    /// Creates a checker for a library specification, backed by a plain solver.
    pub fn new(delta: Delta) -> Self {
        let solver = Solver::with_axioms(delta.axioms.clone());
        Checker::with_oracle(delta, Box::new(solver))
    }

    /// Creates a checker whose SMT queries go through the given oracle. The oracle must
    /// already know the library's axioms (a bare solver would be built with
    /// `Solver::with_axioms(delta.axioms.clone())`).
    pub fn with_oracle(delta: Delta, oracle: Box<dyn SolverOracle>) -> Self {
        let inclusion = InclusionChecker::new(delta.alphabet());
        Checker {
            delta,
            oracle,
            inclusion,
            fresh: 0,
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> Ident {
        self.fresh += 1;
        format!("{prefix}%{}", self.fresh)
    }

    /// Verifies a method body against its HAT signature, returning a report with the
    /// outcome and the work counters of Tables 1/3/4.
    pub fn check_method(
        &mut self,
        sig: &MethodSig,
        body: &Expr,
    ) -> Result<MethodReport, CheckError> {
        let start = Instant::now();
        let queries_before = self.oracle.query_count();
        let time_before = self.oracle.query_time();
        let hits_before = self.oracle.cache_hits();
        let misses_before = self.oracle.cache_misses();
        let locks_before = self.oracle.shared_tier_locks();
        let incl_before = self.inclusion.stats.clone();

        // ν-shadowing regression (found by `marple fuzz`, reproducer `gen/s1-i17-n0`):
        // a *program* variable named like the reserved refinement binder ν is silently
        // captured by every RType qualifier that mentions ν — e.g. the pure result
        // type of `let v = … in` becomes self-referential — flipping the verdict of a
        // provably correct method. Program binders are freely α-renamable, so move any
        // such variable into the internal `%` namespace before checking.
        let renamed: Option<(MethodSig, Expr)> = if sig.params.iter().any(|(p, _)| p == NU)
            || sig.ghosts.iter().any(|(g, _)| g == NU)
            || body.mentions_var(NU)
        {
            let fresh = self.fresh_name(NU);
            let away = |x: &str| {
                if x == NU {
                    fresh.clone()
                } else {
                    x.to_string()
                }
            };
            Some((
                MethodSig {
                    name: sig.name.clone(),
                    ghosts: sig
                        .ghosts
                        .iter()
                        .map(|(g, s)| (away(g), s.clone()))
                        .collect(),
                    params: sig
                        .params
                        .iter()
                        .map(|(p, t)| (away(p), t.clone()))
                        .collect(),
                    // Event-local occurrences of ν (result binders) are shadowed and
                    // left alone by `Sfa::subst`; only genuinely free ones — which can
                    // only have referred to the renamed program variable — move.
                    pre: sig.pre.subst(NU, &Term::var(fresh.clone())),
                    ret: sig.ret.clone(),
                    post: sig.post.subst(NU, &Term::var(fresh.clone())),
                },
                body.rename_var(NU, &fresh),
            ))
        } else {
            None
        };
        let (sig, body) = match &renamed {
            Some((s, b)) => (s, b),
            None => (sig, body),
        };

        let mut ctx = TypeCtx::new();
        for (g, sort) in &sig.ghosts {
            ctx = ctx.push(g.clone(), RType::base(sort.clone()));
        }
        for (p, t) in &sig.params {
            ctx = ctx.push(p.clone(), t.clone());
        }

        let mut failures = Vec::new();
        let mut assumed = 0usize;
        self.check_expr(
            &ctx,
            body,
            &sig.pre,
            &sig.ret,
            &sig.post,
            &mut failures,
            &mut assumed,
        )?;

        // Publish write-behind memo batches before harvesting counters, so the flush's
        // shared-tier locks are attributed to this method rather than lost in drop.
        self.oracle.flush_memos();
        let incl_after = self.inclusion.stats.clone();
        let total_time = start.elapsed();
        let sat_time = self.oracle.query_time().saturating_sub(time_before);
        let dfas = incl_after.dfas_built - incl_before.dfas_built;
        let stats = CheckStats {
            sat_queries: self.oracle.query_count() - queries_before,
            sat_time,
            fa_inclusions: incl_after.fa_inclusions - incl_before.fa_inclusions,
            avg_fa_size: if dfas == 0 {
                0.0
            } else {
                (incl_after.fa_transitions - incl_before.fa_transitions) as f64 / dfas as f64
            },
            fa_time: incl_after
                .time
                .saturating_sub(incl_before.time)
                .saturating_sub(sat_time),
            total_time,
            assumed_preconditions: assumed,
            cache_hits: self.oracle.cache_hits() - hits_before,
            cache_misses: self.oracle.cache_misses() - misses_before,
            enum_queries: incl_after.enum_queries - incl_before.enum_queries,
            pruned_subtrees: incl_after.pruned_subtrees - incl_before.pruned_subtrees,
            minterm_memo_hits: incl_after.minterm_memo_hits - incl_before.minterm_memo_hits,
            inclusion_memo_hits: incl_after.inclusion_memo_hits - incl_before.inclusion_memo_hits,
            dfa_states: incl_after.fa_states - incl_before.fa_states,
            dfa_transitions: incl_after.fa_transitions - incl_before.fa_transitions,
            alphabet_pruned: incl_after.alphabet_pruned - incl_before.alphabet_pruned,
            transition_memo_hits: incl_after.transition_memo_hits
                - incl_before.transition_memo_hits,
            product_states: incl_after.product_states - incl_before.product_states,
            shape_memo_hits: incl_after.shape_memo_hits - incl_before.shape_memo_hits,
            subsumption_checks: incl_after.subsumption_checks - incl_before.subsumption_checks,
            subsumed_pairs: incl_after.subsumed_pairs - incl_before.subsumed_pairs,
            simulation_memo_hits: incl_after.simulation_memo_hits
                - incl_before.simulation_memo_hits,
            shared_tier_locks: self.oracle.shared_tier_locks() - locks_before,
        };
        Ok(MethodReport {
            name: sig.name.clone(),
            verified: failures.is_empty(),
            failures,
            stats,
            branches: body.branch_count(),
            apps: body.app_count(),
        })
    }

    /// `Γ ⊢ e ⇐ [pre] ret [post]`.
    #[allow(clippy::too_many_arguments)]
    fn check_expr(
        &mut self,
        ctx: &TypeCtx,
        e: &Expr,
        pre: &Sfa,
        ret: &RType,
        post: &Sfa,
        failures: &mut Vec<String>,
        assumed: &mut usize,
    ) -> Result<(), CheckError> {
        match e {
            Expr::Value(v) => self.check_tail_value(ctx, v, pre, ret, post, failures, assumed),
            Expr::LetPureOp { x, op, args, body } => {
                let arg_terms = self.arg_terms(args)?;
                let result_ty = self.pure_result_type(op, &arg_terms)?;
                let ctx2 = ctx.push(x.clone(), result_ty);
                self.check_expr(&ctx2, body, pre, ret, post, failures, assumed)
            }
            Expr::LetEffOp { x, op, args, body } => {
                let sig = self
                    .delta
                    .eff_ops
                    .get(op)
                    .cloned()
                    .ok_or_else(|| CheckError::UnknownEffOp(op.clone()))?;
                let arg_terms = self.arg_terms(args)?;
                let cases = sig.instantiate(&arg_terms);
                let ghosts = sig.ghosts.clone();
                self.check_cases(
                    ctx, x, op, &ghosts, cases, body, true, pre, ret, post, failures, assumed,
                )
            }
            Expr::LetApp { x, func, arg, body } => {
                let fname = match func {
                    Value::Var(f) => f.clone(),
                    other => {
                        return Err(CheckError::Unsupported(format!(
                            "application of a non-variable function value `{other}`"
                        )))
                    }
                };
                let fty = ctx
                    .lookup(&fname)
                    .cloned()
                    .ok_or_else(|| CheckError::Unsupported(format!("unbound function `{fname}`")))?;
                self.check_app(ctx, x, &fname, &fty, arg, body, pre, ret, post, failures, assumed)
            }
            Expr::Let { x, rhs, body } => match rhs.as_ref() {
                Expr::Value(v) => {
                    let t = self.synth_value(ctx, v)?;
                    let ctx2 = ctx.push(x.clone(), t);
                    self.check_expr(&ctx2, body, pre, ret, post, failures, assumed)
                }
                _ => Err(CheckError::Unsupported(
                    "general `let x = e1 in e2` with an effectful right-hand side; normalise the program first".into(),
                )),
            },
            Expr::Match { scrutinee, arms } => {
                let scrut_term = self.value_term(scrutinee);
                for arm in arms {
                    let mut ctx2 = ctx.clone();
                    match (arm.ctor.as_str(), &scrut_term) {
                        ("true", Some(t)) => {
                            ctx2 = ctx2.assume(Formula::eq(t.clone(), Term::bool(true)));
                        }
                        ("false", Some(t)) => {
                            ctx2 = ctx2.assume(Formula::eq(t.clone(), Term::bool(false)));
                        }
                        _ => {
                            for b in &arm.binders {
                                ctx2 = ctx2.push(b.clone(), RType::base(Sort::named("?")));
                            }
                        }
                    }
                    self.check_expr(&ctx2, &arm.body, pre, ret, post, failures, assumed)?;
                }
                Ok(())
            }
        }
    }

    /// A tail position returning a value: the result type must be a subtype of the target
    /// and the accumulated effect context must be included in the postcondition automaton.
    #[allow(clippy::too_many_arguments)]
    fn check_tail_value(
        &mut self,
        ctx: &TypeCtx,
        v: &Value,
        pre: &Sfa,
        ret: &RType,
        post: &Sfa,
        failures: &mut Vec<String>,
        assumed: &mut usize,
    ) -> Result<(), CheckError> {
        // Returning a function: check the lambda body against the arrow's HAT.
        if let (
            Value::Lambda { param, body, .. },
            (
                RType::Arrow {
                    param: p,
                    param_ty,
                    ret: fun_ret,
                },
                ctx2,
            ),
        ) = (v, self.strip_ghosts(ctx, ret))
        {
            let mut inner = ctx2.push(param.clone(), (*param_ty).clone());
            if &p != param {
                // The signature's parameter name scopes over the result; rename by
                // substituting it with the lambda's actual parameter.
                inner = inner.push(p.clone(), (*param_ty).clone());
            }
            match fun_ret.as_ref() {
                HType::Pure(t) => {
                    return self.check_expr(
                        &inner,
                        body,
                        &Sfa::Zero,
                        t,
                        &Sfa::universe(),
                        failures,
                        assumed,
                    )
                }
                HType::Hoare { pre, ty, post } => {
                    return self.check_expr(&inner, body, pre, ty, post, failures, assumed)
                }
                HType::Inter(cases) => {
                    for c in cases {
                        if let HType::Hoare { pre, ty, post } = c {
                            self.check_expr(&inner, body, pre, ty, post, failures, assumed)?;
                        }
                    }
                    return Ok(());
                }
            }
        }

        if !self.context_consistent(ctx) {
            return Ok(());
        }
        match self.synth_value(ctx, v) {
            Ok(t) => {
                if let RType::Base { .. } = ret {
                    if !sub_base(self.oracle.as_mut(), ctx, &t, ret) {
                        failures.push(format!("return value `{v}` does not satisfy `{ret}`"));
                    }
                }
            }
            Err(e) => failures.push(format!("cannot type return value `{v}`: {e}")),
        }
        let ok = self.sfa_included(ctx, pre, post)?;
        if !ok {
            failures.push(format!(
                "effect context at `return {v}` is not included in the method postcondition"
            ));
        }
        let _ = assumed;
        Ok(())
    }

    /// `ChkEOpApp` / `ChkApp`: instantiate ghosts, check the precondition coverage and
    /// check the continuation under every case of the operator's intersection type.
    #[allow(clippy::too_many_arguments)]
    fn check_cases(
        &mut self,
        ctx: &TypeCtx,
        x: &str,
        op: &str,
        ghosts: &[(Ident, Sort)],
        cases: Vec<HoareCase>,
        body: &Expr,
        single_event: bool,
        pre: &Sfa,
        ret: &RType,
        post: &Sfa,
        failures: &mut Vec<String>,
        assumed: &mut usize,
    ) -> Result<(), CheckError> {
        // Freshen and bind ghost variables.
        let mut ctx2 = ctx.clone();
        let mut cases = cases;
        let mut ghost_names = Vec::new();
        for (g, sort) in ghosts {
            let fresh = self.fresh_name(g);
            cases = cases
                .iter()
                .map(|c| HoareCase {
                    pre: c.pre.subst(g, &Term::var(fresh.clone())),
                    ty: c.ty.subst(g, &Term::var(fresh.clone())),
                    post: c.post.subst(g, &Term::var(fresh.clone())),
                })
                .collect();
            ctx2 = ctx2.push(fresh.clone(), RType::base(sort.clone()));
            ghost_names.push(fresh);
        }

        // Precondition coverage: Γ ⊢ pre ⊆ ⋁ᵢ preᵢ, possibly after abducing ghost facts.
        let union_pre = Sfa::or(cases.iter().map(|c| c.pre.clone()).collect());
        if self.context_consistent(&ctx2) {
            let mut covered = self.sfa_included(&ctx2, pre, &union_pre)?;
            if !covered && !ghost_names.is_empty() {
                let candidates = ghost_candidates(&ghost_names, pre, &union_pre);
                for cand in candidates {
                    let trial = ctx2.assume(cand.clone());
                    if !self.context_consistent(&trial) {
                        continue;
                    }
                    if self.sfa_included(&trial, pre, &union_pre)? {
                        ctx2 = trial;
                        covered = true;
                        break;
                    }
                    // Keep the (satisfiable) ghost fact even if coverage still fails: it is
                    // the best description of the hidden value we can justify.
                    ctx2 = trial;
                }
            }
            if !covered {
                if ghost_names.is_empty() {
                    failures.push(format!(
                        "effect context before `{op}` is not covered by the operator's precondition"
                    ));
                } else {
                    // The hidden value is trace-determined (e.g. `get`'s result); record
                    // that the precondition was assumed rather than proved.
                    *assumed += 1;
                }
            }
        }

        // Check the continuation under every case. For a single-event library operator
        // the extension of the effect context is exactly one event (the operator's own),
        // so the paper's `(A; □⟨⊤⟩) ∧ A'ᵢ` refines to `(A; ⟨⊤⟩ ∧ LAST) ∧ A'ᵢ`; calls to
        // full methods (which may perform arbitrarily many effects) keep the general form.
        let extension = if single_event {
            Sfa::and(vec![Sfa::any_event(), Sfa::last()])
        } else {
            Sfa::universe()
        };
        for case in &cases {
            let new_pre = Sfa::and(vec![
                Sfa::concat(pre.clone(), extension.clone()),
                case.post.clone(),
            ]);
            let ctx3 = ctx2.push(x.to_string(), case.ty.clone());
            self.check_expr(&ctx3, body, &new_pre, ret, post, failures, assumed)?;
        }
        Ok(())
    }

    /// Function application (`ChkApp`), including calls to thunks and helper methods bound
    /// in the typing context.
    #[allow(clippy::too_many_arguments)]
    fn check_app(
        &mut self,
        ctx: &TypeCtx,
        x: &str,
        fname: &str,
        fty: &RType,
        arg: &Value,
        body: &Expr,
        pre: &Sfa,
        ret: &RType,
        post: &Sfa,
        failures: &mut Vec<String>,
        assumed: &mut usize,
    ) -> Result<(), CheckError> {
        let (arrow, ctx_with_ghosts) = self.strip_ghosts(ctx, fty);
        let RType::Arrow {
            param,
            param_ty,
            ret: fret,
        } = arrow
        else {
            return Err(CheckError::Unsupported(format!(
                "application of `{fname}` which does not have an arrow type"
            )));
        };
        // Check the argument against the parameter type.
        if let RType::Base { .. } = *param_ty {
            if self.context_consistent(ctx) {
                match self.synth_value(ctx, arg) {
                    Ok(at) => {
                        if !sub_base(self.oracle.as_mut(), ctx, &at, &param_ty) {
                            failures.push(format!(
                                "argument `{arg}` of `{fname}` does not satisfy `{param_ty}`"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("cannot type argument `{arg}`: {e}")),
                }
            }
        }
        // Substitute the argument for the parameter in the result type (first-order only).
        let fret = match self.value_term(arg) {
            Some(t) => fret.subst(&param, &t),
            None => (*fret).clone(),
        };
        match fret {
            HType::Pure(t) => {
                let ctx2 = ctx_with_ghosts.push(x.to_string(), t);
                self.check_expr(&ctx2, body, pre, ret, post, failures, assumed)
            }
            other => {
                let cases: Vec<HoareCase> = other
                    .cases()
                    .into_iter()
                    .map(|(p, t, q)| HoareCase {
                        pre: p,
                        ty: t,
                        post: q,
                    })
                    .collect();
                self.check_cases(
                    &ctx_with_ghosts,
                    x,
                    fname,
                    &[],
                    cases,
                    body,
                    false,
                    pre,
                    ret,
                    post,
                    failures,
                    assumed,
                )
            }
        }
    }

    /// Peels ghost binders off a type, binding them (unconstrained) in the returned context.
    fn strip_ghosts(&mut self, ctx: &TypeCtx, t: &RType) -> (RType, TypeCtx) {
        let mut ctx = ctx.clone();
        let mut t = t.clone();
        while let RType::Ghost { var, sort, body } = t {
            ctx = ctx.push(var.clone(), RType::base(sort.clone()));
            t = *body;
        }
        (t, ctx)
    }

    /// The first-order term denoted by a value, if any.
    fn value_term(&self, v: &Value) -> Option<Term> {
        match v {
            Value::Const(c) => Some(Term::Const(c.clone())),
            Value::Var(x) => Some(Term::var(x.clone())),
            Value::Ctor(d, args) if args.is_empty() && d == "true" => {
                Some(Term::Const(Constant::Bool(true)))
            }
            Value::Ctor(d, args) if args.is_empty() && d == "false" => {
                Some(Term::Const(Constant::Bool(false)))
            }
            _ => None,
        }
    }

    fn arg_terms(&self, args: &[Value]) -> Result<Vec<Term>, CheckError> {
        args.iter()
            .map(|a| {
                self.value_term(a).ok_or_else(|| {
                    CheckError::Unsupported(format!("higher-order operator argument `{a}`"))
                })
            })
            .collect()
    }

    /// Synthesis mode for values (`Γ ⊢ v ⇒ t`).
    fn synth_value(&mut self, ctx: &TypeCtx, v: &Value) -> Result<RType, CheckError> {
        match v {
            Value::Const(c) => Ok(RType::singleton(c.sort(), Term::Const(c.clone()))),
            Value::Var(x) => match ctx.lookup(x) {
                Some(RType::Base { sort, .. }) => {
                    Ok(RType::singleton(sort.clone(), Term::var(x.clone())))
                }
                Some(other) => Ok(other.clone()),
                None => Err(CheckError::Unsupported(format!("unbound variable `{x}`"))),
            },
            Value::Ctor(d, args) if args.is_empty() && (d == "true" || d == "false") => {
                Ok(RType::bool_singleton(d == "true"))
            }
            other => Err(CheckError::Unsupported(format!(
                "cannot synthesise a type for value `{other}`"
            ))),
        }
    }

    /// Result refinement type of a pure operator application.
    fn pure_result_type(&mut self, op: &str, args: &[Term]) -> Result<RType, CheckError> {
        let nu = Term::var(NU);
        let bool_iff = |phi: Formula| {
            RType::refined(
                Sort::Bool,
                Formula::iff(Formula::bool_term(nu.clone()), phi),
            )
        };
        let binary =
            |f: fn(Term, Term) -> Formula, args: &[Term]| f(args[0].clone(), args[1].clone());
        match (op, args.len()) {
            ("+", 2) => Ok(RType::refined(
                Sort::Int,
                Formula::eq(nu.clone(), Term::add(args[0].clone(), args[1].clone())),
            )),
            ("-", 2) => Ok(RType::refined(
                Sort::Int,
                Formula::eq(nu.clone(), Term::sub(args[0].clone(), args[1].clone())),
            )),
            ("*", 2) | ("mod", 2) => Ok(RType::base(Sort::Int)),
            ("<", 2) => Ok(bool_iff(binary(Formula::lt, args))),
            ("<=", 2) => Ok(bool_iff(binary(Formula::le, args))),
            (">", 2) => Ok(bool_iff(Formula::lt(args[1].clone(), args[0].clone()))),
            (">=", 2) => Ok(bool_iff(Formula::le(args[1].clone(), args[0].clone()))),
            ("==", 2) => Ok(bool_iff(binary(Formula::eq, args))),
            ("!=", 2) => Ok(bool_iff(Formula::not(binary(Formula::eq, args)))),
            ("not", 1) => Ok(bool_iff(Formula::not(Formula::bool_term(args[0].clone())))),
            ("&&", 2) => Ok(bool_iff(Formula::and(vec![
                Formula::bool_term(args[0].clone()),
                Formula::bool_term(args[1].clone()),
            ]))),
            ("||", 2) => Ok(bool_iff(Formula::or(vec![
                Formula::bool_term(args[0].clone()),
                Formula::bool_term(args[1].clone()),
            ]))),
            _ => match self.delta.pure_ops.get(op) {
                Some(sig) => Ok(sig.instantiate(args)),
                None => Err(CheckError::UnknownPureOp(op.to_string())),
            },
        }
    }

    /// Is the typing context logically consistent? Inconsistent contexts make every
    /// obligation hold vacuously (dead branches).
    fn context_consistent(&mut self, ctx: &TypeCtx) -> bool {
        let l = ctx.logical();
        self.oracle.is_sat(&l.vars, &l.facts)
    }

    /// `Γ ⊢ A ⊆ B` with vacuous success for inconsistent contexts.
    fn sfa_included(&mut self, ctx: &TypeCtx, a: &Sfa, b: &Sfa) -> Result<bool, CheckError> {
        if !self.context_consistent(ctx) {
            return Ok(true);
        }
        let l = ctx.logical();
        self.inclusion
            .check(&l, a, b, self.oracle.as_mut())
            .map_err(|e| CheckError::AutomatonTooLarge(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{events::*, EffOpSig, PureOpSig};
    use hat_lang::builder::*;

    /// A minimal stateful Set library: `insert` and `mem`, with `mem` given an
    /// intersection type distinguishing whether the element was previously inserted.
    fn set_delta() -> Delta {
        let mut d = Delta::new();
        let int = RType::base(Sort::Int);
        // insert : x:int → [□⟨⊤⟩] unit [□⟨⊤⟩; ⟨insert x⟩ ∧ LAST]
        let ins_event = ev(
            "insert",
            &["y"],
            Formula::eq(Term::var("y"), Term::var("x")),
        );
        d.declare_eff(
            "insert",
            EffOpSig {
                ghosts: vec![],
                params: vec![("x".into(), int.clone())],
                cases: vec![HoareCase {
                    pre: Sfa::universe(),
                    ty: RType::base(Sort::Unit),
                    post: appends(&Sfa::universe(), ins_event),
                }],
            },
        );
        // mem : x:int → ([♦⟨insert x⟩] {ν=true} [..]) ⊓ ([¬♦⟨insert x⟩] {ν=false} [..])
        let present = Sfa::eventually(ev(
            "insert",
            &["y"],
            Formula::eq(Term::var("y"), Term::var("x")),
        ));
        let absent = Sfa::not(present.clone());
        let mem_ev = |r: bool| {
            ev(
                "mem",
                &["y"],
                Formula::and(vec![
                    Formula::eq(Term::var("y"), Term::var("x")),
                    Formula::eq(Term::var(NU), Term::bool(r)),
                ]),
            )
        };
        d.declare_eff(
            "mem",
            EffOpSig {
                ghosts: vec![],
                params: vec![("x".into(), int)],
                cases: vec![
                    HoareCase {
                        pre: present.clone(),
                        ty: RType::bool_singleton(true),
                        post: appends(&present, mem_ev(true)),
                    },
                    HoareCase {
                        pre: absent.clone(),
                        ty: RType::bool_singleton(false),
                        post: appends(&absent, mem_ev(false)),
                    },
                ],
            },
        );
        d
    }

    /// I_Set(el): el is never inserted twice.
    fn uniqueness_invariant() -> Sfa {
        let ins_el = || {
            ev(
                "insert",
                &["y"],
                Formula::eq(Term::var("y"), Term::var("el")),
            )
        };
        Sfa::globally(Sfa::implies(
            ins_el(),
            Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
        ))
    }

    fn set_insert_sig() -> MethodSig {
        MethodSig {
            name: "insert".into(),
            ghosts: vec![("el".into(), Sort::Int)],
            params: vec![("elem".into(), RType::base(Sort::Int))],
            pre: uniqueness_invariant(),
            ret: RType::base(Sort::Unit),
            post: uniqueness_invariant(),
        }
    }

    /// The guarded insert: only insert when `mem` says the element is absent.
    fn guarded_insert() -> Expr {
        let_eff(
            "b",
            "mem",
            vec![Value::var("elem")],
            ite(
                Value::var("b"),
                ret(Value::unit()),
                let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit())),
            ),
        )
    }

    /// The buggy insert: always insert, which may duplicate `el`.
    fn unguarded_insert() -> Expr {
        let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit()))
    }

    #[test]
    fn guarded_insert_preserves_the_invariant() {
        let mut checker = Checker::new(set_delta());
        let report = checker
            .check_method(&set_insert_sig(), &guarded_insert())
            .unwrap();
        assert!(report.verified, "failures: {:?}", report.failures);
        assert_eq!(report.branches, 2);
        assert_eq!(report.apps, 2);
        assert!(report.stats.sat_queries > 0);
        assert!(report.stats.fa_inclusions > 0);
        assert!(report.stats.avg_fa_size > 0.0);
        assert_eq!(report.stats.assumed_preconditions, 0);
    }

    #[test]
    fn a_program_variable_named_nu_is_renamed_not_captured() {
        // Regression: found by `marple fuzz` (reproducer `gen/s1-i17-n0`). A method
        // parameter (or let binder) named like the reserved refinement binder ν used
        // to be captured by RType qualifiers — the pure guard's result type became
        // self-referential and a provably correct method was rejected. The checker
        // now α-renames such program variables up front.
        let mut checker = Checker::new(set_delta());
        let sig = MethodSig {
            name: "insert_pair".into(),
            ghosts: vec![("el".into(), Sort::Int)],
            params: vec![
                ("q".into(), RType::base(Sort::Int)),
                (NU.into(), RType::base(Sort::Int)), // the reserved name, as a param
            ],
            pre: uniqueness_invariant(),
            ret: RType::base(Sort::Unit),
            post: uniqueness_invariant(),
        };
        // let b = mem v in if b then () else insert v — the guarded-insert template,
        // writing the ν-named parameter.
        let body = let_eff(
            "b",
            "mem",
            vec![Value::var(NU)],
            ite(
                Value::var("b"),
                ret(Value::unit()),
                let_eff("u", "insert", vec![Value::var(NU)], ret(Value::unit())),
            ),
        );
        let report = checker.check_method(&sig, &body).unwrap();
        assert!(report.verified, "failures: {:?}", report.failures);

        // And a let binder named ν in an otherwise pure method.
        let sig2 = MethodSig {
            name: "probe".into(),
            ghosts: vec![("el".into(), Sort::Int)],
            params: vec![("q".into(), RType::base(Sort::Int))],
            pre: uniqueness_invariant(),
            ret: RType::base(Sort::Bool),
            post: uniqueness_invariant(),
        };
        let body2 = let_eff(NU, "mem", vec![Value::var("q")], ret(Value::var(NU)));
        let report2 = checker.check_method(&sig2, &body2).unwrap();
        assert!(report2.verified, "failures: {:?}", report2.failures);
    }

    #[test]
    fn unguarded_insert_is_rejected() {
        let mut checker = Checker::new(set_delta());
        let report = checker
            .check_method(&set_insert_sig(), &unguarded_insert())
            .unwrap();
        assert!(!report.verified);
        assert!(!report.failures.is_empty());
    }

    #[test]
    fn pure_reasoning_flows_through_branches() {
        // Insert only when the new element provably differs from the ghost `el`:
        // inserting a different element can never duplicate `el`, so the invariant is
        // preserved even without consulting `mem`.
        let mut checker = Checker::new(set_delta());
        let sig = set_insert_sig();
        let body = let_pure(
            "same",
            "==",
            vec![Value::var("elem"), Value::var("el")],
            ite(
                Value::var("same"),
                ret(Value::unit()),
                let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit())),
            ),
        );
        let report = checker.check_method(&sig, &body).unwrap();
        assert!(report.verified, "failures: {:?}", report.failures);
    }

    #[test]
    fn unknown_operator_is_an_error() {
        let mut checker = Checker::new(set_delta());
        let sig = set_insert_sig();
        let body = let_eff("u", "frobnicate", vec![], ret(Value::unit()));
        assert!(matches!(
            checker.check_method(&sig, &body),
            Err(CheckError::UnknownEffOp(_))
        ));
    }

    #[test]
    fn return_value_refinements_are_checked() {
        let mut d = set_delta();
        d.declare_pure(
            "choose",
            PureOpSig {
                params: vec![("x".into(), RType::base(Sort::Int))],
                ret: RType::base(Sort::Int),
            },
        );
        let mut checker = Checker::new(d);
        // Signature demands the result be positive, body returns 0: must fail.
        let sig = MethodSig {
            name: "positive".into(),
            ghosts: vec![],
            params: vec![],
            pre: Sfa::universe(),
            ret: RType::refined(Sort::Int, Formula::lt(Term::int(0), Term::var(NU))),
            post: Sfa::universe(),
        };
        let report = checker.check_method(&sig, &ret(Value::int(0))).unwrap();
        assert!(!report.verified);
        let report_ok = checker.check_method(&sig, &ret(Value::int(3))).unwrap();
        assert!(report_ok.verified);
    }
}
