//! Refinement types and Hoare Automata Types (paper Fig. 4).

use hat_lang::BasicType;
use hat_logic::{Formula, Ident, Sort, Term};
use hat_sfa::Sfa;
use std::fmt;

/// The distinguished value variable `ν` used in base-type qualifiers.
pub const NU: &str = "v";

/// Pure refinement types (`t` in the paper's grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RType {
    /// `{ν : b | φ}` — a base sort refined by a qualifier over `ν` (and context variables).
    Base {
        /// The base sort.
        sort: Sort,
        /// The qualifier; `ν` refers to the value.
        qualifier: Formula,
    },
    /// `x : t → τ` — a dependent arrow whose result is a HAT.
    Arrow {
        /// Parameter name (scopes over the result type).
        param: Ident,
        /// Parameter type.
        param_ty: Box<RType>,
        /// Result type.
        ret: Box<HType>,
    },
    /// `x : b ⇢ t` — a ghost-variable prefix (the ghost scopes over the body).
    Ghost {
        /// Ghost variable name.
        var: Ident,
        /// Ghost variable sort.
        sort: Sort,
        /// The type it scopes over.
        body: Box<RType>,
    },
}

impl RType {
    /// `{ν : b | ⊤}`.
    pub fn base(sort: Sort) -> Self {
        RType::Base {
            sort,
            qualifier: Formula::True,
        }
    }

    /// `{ν : b | φ}`.
    pub fn refined(sort: Sort, qualifier: Formula) -> Self {
        RType::Base { sort, qualifier }
    }

    /// `{ν : b | ν = t}` — the singleton type of a term.
    pub fn singleton(sort: Sort, t: Term) -> Self {
        RType::refined(sort, Formula::eq(Term::var(NU), t))
    }

    /// `{ν : bool | ν = b}`.
    pub fn bool_singleton(b: bool) -> Self {
        RType::singleton(Sort::Bool, Term::bool(b))
    }

    /// An arrow type.
    pub fn arrow(param: impl Into<Ident>, param_ty: RType, ret: HType) -> Self {
        RType::Arrow {
            param: param.into(),
            param_ty: Box::new(param_ty),
            ret: Box::new(ret),
        }
    }

    /// A ghost-prefixed type.
    pub fn ghost(var: impl Into<Ident>, sort: Sort, body: RType) -> Self {
        RType::Ghost {
            var: var.into(),
            sort,
            body: Box::new(body),
        }
    }

    /// Type erasure `⌊t⌋` to basic types.
    pub fn erase(&self) -> BasicType {
        match self {
            RType::Base { sort, .. } => BasicType::Base(sort.clone()),
            RType::Arrow { param_ty, ret, .. } => BasicType::arrow(param_ty.erase(), ret.erase()),
            RType::Ghost { body, .. } => body.erase(),
        }
    }

    /// Substitutes a context variable by a term (capture-avoiding with respect to `ν`,
    /// parameters and ghost binders).
    pub fn subst(&self, var: &str, t: &Term) -> RType {
        if var == NU {
            return self.clone();
        }
        match self {
            RType::Base { sort, qualifier } => RType::Base {
                sort: sort.clone(),
                qualifier: qualifier.subst_var(var, t),
            },
            RType::Arrow {
                param,
                param_ty,
                ret,
            } => {
                let new_ret = if param == var {
                    ret.clone()
                } else {
                    Box::new(ret.subst(var, t))
                };
                RType::Arrow {
                    param: param.clone(),
                    param_ty: Box::new(param_ty.subst(var, t)),
                    ret: new_ret,
                }
            }
            RType::Ghost { var: g, sort, body } => {
                if g == var {
                    self.clone()
                } else {
                    RType::Ghost {
                        var: g.clone(),
                        sort: sort.clone(),
                        body: Box::new(body.subst(var, t)),
                    }
                }
            }
        }
    }

    /// The qualifier instantiated at a specific variable, i.e. `φ[ν ↦ x]`, for base types.
    pub fn qualifier_at(&self, x: &str) -> Option<Formula> {
        match self {
            RType::Base { qualifier, .. } => Some(qualifier.subst_var(NU, &Term::var(x))),
            _ => None,
        }
    }

    /// The sort, for base types.
    pub fn sort(&self) -> Option<&Sort> {
        match self {
            RType::Base { sort, .. } => Some(sort),
            _ => None,
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::Base { sort, qualifier } => match qualifier {
                Formula::True => write!(f, "{sort}"),
                q => write!(f, "{{v:{sort} | {q}}}"),
            },
            RType::Arrow {
                param,
                param_ty,
                ret,
            } => write!(f, "{param}:{param_ty} -> {ret}"),
            RType::Ghost { var, sort, body } => write!(f, "{var}:{sort} ~> {body}"),
        }
    }
}

/// Hoare Automata Types (`τ` in the paper's grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)] // Hoare is by far the common case; boxing would churn
pub enum HType {
    /// A pure type used as a computation type (no constraint on traces; rule `TEPur`).
    Pure(RType),
    /// `[A] t [B]` — a computation whose allowed effect contexts are `A` and whose
    /// context-plus-emitted trace is described by `B`.
    Hoare {
        /// Precondition automaton.
        pre: Sfa,
        /// Result refinement type.
        ty: RType,
        /// Postcondition automaton.
        post: Sfa,
    },
    /// An intersection of HATs (`τ ⊓ τ`).
    Inter(Vec<HType>),
}

impl HType {
    /// `[A] t [B]`.
    pub fn hoare(pre: Sfa, ty: RType, post: Sfa) -> Self {
        HType::Hoare { pre, ty, post }
    }

    /// An intersection type; single-element lists collapse.
    pub fn inter(cases: Vec<HType>) -> Self {
        let mut flat = Vec::new();
        for c in cases {
            match c {
                HType::Inter(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.into_iter().next().expect("len checked")
        } else {
            HType::Inter(flat)
        }
    }

    /// Type erasure `⌊τ⌋`.
    pub fn erase(&self) -> BasicType {
        match self {
            HType::Pure(t) => t.erase(),
            HType::Hoare { ty, .. } => ty.erase(),
            HType::Inter(cases) => cases
                .first()
                .map(HType::erase)
                .unwrap_or_else(BasicType::unit),
        }
    }

    /// Substitution of a context variable by a term (in qualifiers and automata).
    pub fn subst(&self, var: &str, t: &Term) -> HType {
        match self {
            HType::Pure(rt) => HType::Pure(rt.subst(var, t)),
            HType::Hoare { pre, ty, post } => HType::Hoare {
                pre: pre.subst(var, t),
                ty: ty.subst(var, t),
                post: post.subst(var, t),
            },
            HType::Inter(cases) => HType::Inter(cases.iter().map(|c| c.subst(var, t)).collect()),
        }
    }

    /// The list of Hoare cases (a non-intersection counts as one case). Pure types have no
    /// Hoare case.
    pub fn cases(&self) -> Vec<(Sfa, RType, Sfa)> {
        match self {
            HType::Pure(_) => Vec::new(),
            HType::Hoare { pre, ty, post } => vec![(pre.clone(), ty.clone(), post.clone())],
            HType::Inter(cases) => cases.iter().flat_map(HType::cases).collect(),
        }
    }
}

impl fmt::Display for HType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HType::Pure(t) => write!(f, "{t}"),
            HType::Hoare { pre, ty, post } => write!(f, "[{pre}] {ty} [{post}]"),
            HType::Inter(cases) => {
                for (i, c) in cases.iter().enumerate() {
                    if i > 0 {
                        write!(f, " /\\ ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erasure_of_nested_types() {
        let t = RType::ghost(
            "p",
            Sort::named("Path.t"),
            RType::arrow(
                "path",
                RType::base(Sort::named("Path.t")),
                HType::hoare(Sfa::universe(), RType::base(Sort::Bool), Sfa::universe()),
            ),
        );
        assert_eq!(
            t.erase(),
            BasicType::arrow(
                BasicType::Base(Sort::named("Path.t")),
                BasicType::Base(Sort::Bool)
            )
        );
    }

    #[test]
    fn singleton_and_qualifier_at() {
        let t = RType::singleton(Sort::Int, Term::int(3));
        assert_eq!(
            t.qualifier_at("x").unwrap(),
            Formula::eq(Term::var("x"), Term::int(3))
        );
        assert_eq!(t.sort(), Some(&Sort::Int));
    }

    #[test]
    fn substitution_avoids_capture() {
        // {ν:int | ν = y} with y ↦ 3
        let t = RType::refined(Sort::Int, Formula::eq(Term::var(NU), Term::var("y")));
        let s = t.subst("y", &Term::int(3));
        assert_eq!(s, RType::singleton(Sort::Int, Term::int(3)));
        // substituting ν is a no-op
        assert_eq!(t.subst(NU, &Term::int(0)), t);
        // ghost binder shadows
        let g = RType::ghost("a", Sort::Int, t.clone());
        assert_eq!(g.subst("a", &Term::int(1)), g);
    }

    #[test]
    fn intersection_flattens() {
        let h = HType::hoare(Sfa::universe(), RType::base(Sort::Unit), Sfa::universe());
        let i = HType::inter(vec![h.clone(), HType::inter(vec![h.clone(), h.clone()])]);
        assert_eq!(i.cases().len(), 3);
        let single = HType::inter(vec![h.clone()]);
        assert_eq!(single, h);
    }

    #[test]
    fn display_forms() {
        let t = RType::refined(Sort::Bool, Formula::eq(Term::var(NU), Term::bool(true)));
        assert_eq!(t.to_string(), "{v:bool | v == true}");
        assert_eq!(RType::base(Sort::Int).to_string(), "int");
        let h = HType::hoare(Sfa::universe(), RType::base(Sort::Unit), Sfa::universe());
        assert!(h.to_string().starts_with('['));
    }

    #[test]
    fn subst_in_hoare_types_reaches_automata() {
        let pre = Sfa::event(
            "put",
            vec!["key".into(), "val".into()],
            "res",
            Formula::eq(Term::var("key"), Term::var("k")),
        );
        let h = HType::hoare(pre, RType::base(Sort::Unit), Sfa::universe());
        let s = h.subst("k", &Term::atom("/a"));
        match s {
            HType::Hoare { pre, .. } => {
                assert!(pre.free_vars().is_empty());
            }
            other => panic!("unexpected {other}"),
        }
    }
}
