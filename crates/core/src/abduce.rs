//! Ghost-variable instantiation by abduction (paper §5.2, Algorithm 3).
//!
//! When an effectful operator's signature carries ghost variables (e.g. the value ghost `a`
//! of `get`), the checker must strengthen the typing context with a qualifier over the
//! ghost that is sufficient for the operator's precondition automaton to cover the current
//! effect context. Following the spirit of `Abduce`, candidate qualifiers are boolean
//! combinations of literals *transferred* from the automata: a literal of the target
//! automaton that links an event variable to the ghost (e.g. `val = a`) is matched with the
//! literals the context automaton knows about that same event variable (e.g. `isDir(val)`),
//! yielding candidate ghost facts such as `isDir(a)`.
//!
//! The full CEGIS loop of the paper is replaced by a weakest-first search over these
//! candidates; this is sufficient for the library signatures shipped in `hat-stdlib` and is
//! recorded as a deviation in `DESIGN.md`.

use hat_logic::{Atom, Formula, Ident, Term};
use hat_sfa::Sfa;
use std::collections::BTreeSet;

/// Collects `(op, literal)` pairs from every symbolic event of an automaton, keeping the
/// event's own argument names.
fn event_literals(a: &Sfa, out: &mut Vec<(String, Vec<Ident>, Ident, Atom)>) {
    match a {
        Sfa::Zero | Sfa::Epsilon | Sfa::Guard(_) => {}
        Sfa::Event(e) => {
            let mut atoms = Vec::new();
            e.phi.collect_atoms(&mut atoms);
            for at in atoms {
                out.push((e.op.clone(), e.args.clone(), e.result.clone(), at));
            }
        }
        Sfa::Not(x) | Sfa::Next(x) | Sfa::Star(x) => event_literals(x, out),
        Sfa::And(parts) | Sfa::Or(parts) => {
            for p in parts {
                event_literals(p, out);
            }
        }
        Sfa::Concat(x, y) | Sfa::Until(x, y) => {
            event_literals(x, out);
            event_literals(y, out);
        }
    }
}

/// Candidate qualifiers for the given ghost variables, derived from a context automaton
/// `ctx_auto` and the target (operator precondition) automaton `target`.
///
/// The result is ordered from weakest (fewest conjuncts) to strongest; `Formula::True` is
/// always a valid first candidate and is therefore not included.
pub fn ghost_candidates(ghosts: &[Ident], ctx_auto: &Sfa, target: &Sfa) -> Vec<Formula> {
    let mut target_lits = Vec::new();
    event_literals(target, &mut target_lits);
    let mut ctx_lits = Vec::new();
    event_literals(ctx_auto, &mut ctx_lits);

    let ghost_set: BTreeSet<&Ident> = ghosts.iter().collect();
    let mut singles: Vec<Formula> = Vec::new();

    for (op, args, result, lit) in &target_lits {
        let mut vars = BTreeSet::new();
        lit.collect_vars(&mut vars);
        // Literals of the form `eventvar = ghost` (or symmetric) link an event variable to
        // a ghost; transfer what the context automaton knows about that event variable.
        let locals: BTreeSet<&Ident> = args.iter().chain(std::iter::once(result)).collect();
        let linked: Vec<(&Ident, &Ident)> = match lit {
            Atom::Eq(Term::Var(a), Term::Var(b)) => {
                let mut v = Vec::new();
                if locals.contains(a) && ghost_set.contains(b) {
                    v.push((a, b));
                }
                if locals.contains(b) && ghost_set.contains(a) {
                    v.push((b, a));
                }
                v
            }
            _ => Vec::new(),
        };
        for (event_var, ghost) in linked {
            for (op2, args2, result2, lit2) in &ctx_lits {
                if op2 != op {
                    continue;
                }
                // Map the other event's variable in the same position onto `event_var`.
                let position = args.iter().position(|a| a == event_var);
                let other_var: Option<&Ident> = match position {
                    Some(i) => args2.get(i),
                    None if event_var == result => Some(result2),
                    None => None,
                };
                let Some(other_var) = other_var else { continue };
                let mut vars2 = BTreeSet::new();
                lit2.collect_vars(&mut vars2);
                if !vars2.contains(other_var) {
                    continue;
                }
                // Drop literals that still mention other event-local variables after the
                // transfer (they would be ill-scoped as ghost facts).
                let locals2: BTreeSet<&Ident> =
                    args2.iter().chain(std::iter::once(result2)).collect();
                if vars2.iter().any(|v| v != other_var && locals2.contains(v)) {
                    continue;
                }
                let transferred =
                    Formula::Atom(lit2.subst_var(other_var, &Term::Var(ghost.clone())));
                if !singles.contains(&transferred) {
                    singles.push(transferred);
                }
            }
        }
        let _ = vars;
    }

    let mut out = singles.clone();
    if singles.len() > 1 {
        out.push(Formula::and(singles));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put_event(phi: Formula) -> Sfa {
        Sfa::event("put", vec!["key".into(), "val".into()], "res", phi)
    }

    #[test]
    fn transfers_context_knowledge_to_the_ghost() {
        // Target (precondition of `get k` with ghost a): ♦⟨put key val | key = k ∧ val = a⟩
        let target = Sfa::eventually(put_event(Formula::and(vec![
            Formula::eq(Term::var("key"), Term::var("k")),
            Formula::eq(Term::var("val"), Term::var("a")),
        ])));
        // Context automaton knows ♦⟨put key val | key = k ∧ isDir(val)⟩.
        let ctx_auto = Sfa::eventually(put_event(Formula::and(vec![
            Formula::eq(Term::var("key"), Term::var("k")),
            Formula::pred("isDir", vec![Term::var("val")]),
        ])));
        let cands = ghost_candidates(&["a".into()], &ctx_auto, &target);
        assert!(
            cands.contains(&Formula::pred("isDir", vec![Term::var("a")])),
            "expected isDir(a) among candidates, got {cands:?}"
        );
    }

    #[test]
    fn no_candidates_without_ghost_links() {
        let target = Sfa::eventually(put_event(Formula::eq(Term::var("key"), Term::var("k"))));
        let ctx_auto = Sfa::eventually(put_event(Formula::pred("isDir", vec![Term::var("val")])));
        let cands = ghost_candidates(&["a".into()], &ctx_auto, &target);
        assert!(cands.is_empty());
    }

    #[test]
    fn result_variable_links_are_supported() {
        // Target: ♦⟨read = ν | ν = a⟩; context knows ♦⟨read = ν | 0 <= ν⟩.
        let target = Sfa::eventually(Sfa::event(
            "read",
            vec![],
            "out",
            Formula::eq(Term::var("out"), Term::var("a")),
        ));
        let ctx_auto = Sfa::eventually(Sfa::event(
            "read",
            vec![],
            "r",
            Formula::le(Term::int(0), Term::var("r")),
        ));
        let cands = ghost_candidates(&["a".into()], &ctx_auto, &target);
        assert!(cands.contains(&Formula::le(Term::int(0), Term::var("a"))));
    }
}
