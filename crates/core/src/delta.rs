//! The built-in operator typing context `Δ` (paper Example 4.2): HAT signatures for the
//! effectful operators of the backing libraries and refinement signatures for pure
//! operators and method predicates.

use crate::rty::{RType, NU};
use hat_lang::{BasicTyCtx, BasicType};
use hat_logic::{AxiomSet, Formula, Ident, Sort, Term};
use hat_sfa::{OpSig, Sfa};
use std::collections::BTreeMap;

/// One Hoare case of an effectful operator's return type.
#[derive(Debug, Clone)]
pub struct HoareCase {
    /// Precondition automaton.
    pub pre: Sfa,
    /// Result refinement type.
    pub ty: RType,
    /// Postcondition automaton.
    pub post: Sfa,
}

/// The HAT signature of an effectful operator:
/// `z̄ : b̄ ⇢ ȳ : t̄ → ⊓ᵢ [Aᵢ] tᵢ [Aᵢ']`.
#[derive(Debug, Clone)]
pub struct EffOpSig {
    /// Ghost variables and their sorts.
    pub ghosts: Vec<(Ident, Sort)>,
    /// Parameters and their refinement types.
    pub params: Vec<(Ident, RType)>,
    /// The intersection of Hoare cases describing the result.
    pub cases: Vec<HoareCase>,
}

impl EffOpSig {
    /// Substitutes actual argument terms for the declared parameters in every case.
    ///
    /// The substitution is *simultaneous*: it goes through internal `%`-namespace
    /// placeholders (which cannot occur in user identifiers) so that an argument
    /// sharing a name with a later declared parameter is never rewritten again by that
    /// parameter's substitution. A naive sequential loop gets this wrong — e.g.
    /// instantiating params `(x0, x1)` with args `(x1, z)` must yield `x1` where the
    /// case mentioned `x0`, not `z`.
    pub fn instantiate(&self, args: &[Term]) -> Vec<HoareCase> {
        self.cases
            .iter()
            .map(|c| {
                let mut pre = c.pre.clone();
                let mut ty = c.ty.clone();
                let mut post = c.post.clone();
                for (i, p) in self
                    .params
                    .iter()
                    .zip(args)
                    .map(|((p, _), _)| p)
                    .enumerate()
                {
                    let ph = Term::var(placeholder(i));
                    pre = pre.subst(p, &ph);
                    ty = ty.subst(p, &ph);
                    post = post.subst(p, &ph);
                }
                for (i, a) in args.iter().take(self.params.len()).enumerate() {
                    let ph = placeholder(i);
                    pre = pre.subst(&ph, a);
                    ty = ty.subst(&ph, a);
                    post = post.subst(&ph, a);
                }
                HoareCase { pre, ty, post }
            })
            .collect()
    }
}

/// The internal placeholder name for parameter position `i` during instantiation.
/// `%` keeps it outside the user-identifier namespace, and no other internal name
/// generator (checker freshening uses `<prefix>%<n>`) produces a name starting with
/// `%`.
fn placeholder(i: usize) -> String {
    format!("%inst{i}")
}

/// The refinement signature of a pure operator: `ȳ : t̄ → t`.
#[derive(Debug, Clone)]
pub struct PureOpSig {
    /// Parameters and their refinement types.
    pub params: Vec<(Ident, RType)>,
    /// Result type (may mention the parameters).
    pub ret: RType,
}

impl PureOpSig {
    /// The result type with actual argument terms substituted for the parameters
    /// (simultaneously — see [`EffOpSig::instantiate`]).
    pub fn instantiate(&self, args: &[Term]) -> RType {
        let mut ret = self.ret.clone();
        for (i, p) in self
            .params
            .iter()
            .zip(args)
            .map(|((p, _), _)| p)
            .enumerate()
        {
            ret = ret.subst(p, &Term::var(placeholder(i)));
        }
        for (i, a) in args.iter().take(self.params.len()).enumerate() {
            ret = ret.subst(&placeholder(i), a);
        }
        ret
    }
}

/// The built-in typing context: a *library specification* in the sense of the paper.
///
/// A `Delta` bundles, for one backing library (or a union of libraries):
/// * the HAT signatures of its effectful operators,
/// * refinement signatures for the pure operators it relies on,
/// * the alphabet ([`OpSig`]) used by the SFA inclusion checker, and
/// * the method-predicate axioms handed to the SMT solver.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Effectful operator signatures.
    pub eff_ops: BTreeMap<Ident, EffOpSig>,
    /// Pure operator signatures.
    pub pure_ops: BTreeMap<Ident, PureOpSig>,
    /// Method-predicate / pure-function axioms.
    pub axioms: AxiomSet,
}

impl Delta {
    /// An empty library specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an effectful operator.
    pub fn declare_eff(&mut self, name: impl Into<Ident>, sig: EffOpSig) -> &mut Self {
        self.eff_ops.insert(name.into(), sig);
        self
    }

    /// Registers a pure operator.
    pub fn declare_pure(&mut self, name: impl Into<Ident>, sig: PureOpSig) -> &mut Self {
        self.pure_ops.insert(name.into(), sig);
        self
    }

    /// Merges another library specification into this one.
    pub fn extend(&mut self, other: &Delta) -> &mut Self {
        for (k, v) in &other.eff_ops {
            self.eff_ops.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.pure_ops {
            self.pure_ops.insert(k.clone(), v.clone());
        }
        self.axioms.extend(&other.axioms);
        self
    }

    /// The operator alphabet used by automaton inclusion (paper Algorithm 1, line 5).
    pub fn alphabet(&self) -> Vec<OpSig> {
        self.eff_ops
            .iter()
            .map(|(name, sig)| {
                OpSig::new(
                    name.clone(),
                    sig.params
                        .iter()
                        .map(|(p, t)| (p.clone(), t.sort().cloned().unwrap_or(Sort::named("?"))))
                        .collect(),
                    sig.cases
                        .first()
                        .and_then(|c| c.ty.sort().cloned())
                        .unwrap_or(Sort::Unit),
                )
            })
            .collect()
    }

    /// The basic typing context induced by the declared operators (used for the `⊢s`
    /// pre-check of client programs).
    pub fn basic_ctx(&self) -> BasicTyCtx {
        let mut ctx = BasicTyCtx::standard();
        for (name, sig) in &self.eff_ops {
            ctx.declare_eff(
                name.clone(),
                sig.params.iter().map(|(_, t)| t.erase()).collect(),
                sig.cases
                    .first()
                    .map(|c| c.ty.erase())
                    .unwrap_or_else(BasicType::unit),
            );
        }
        for (name, sig) in &self.pure_ops {
            ctx.declare_pure(
                name.clone(),
                sig.params.iter().map(|(_, t)| t.erase()).collect(),
                sig.ret.erase(),
            );
        }
        ctx
    }
}

/// Convenience constructors for the event patterns that appear over and over in library
/// signatures and representation invariants.
pub mod events {
    use super::*;

    /// `⟨op args = ν | φ⟩` with the canonical result name.
    pub fn ev(op: &str, args: &[&str], phi: Formula) -> Sfa {
        Sfa::event(op, args.iter().map(|s| s.to_string()).collect(), NU, phi)
    }

    /// `⟨op args = ν | ⊤⟩`.
    pub fn ev_any(op: &str, args: &[&str]) -> Sfa {
        ev(op, args, Formula::True)
    }

    /// The postcondition `A; (⟨op ... | φ⟩ ∧ LAST)` used by every built-in operator:
    /// the operator appends exactly one event to the effect context.
    pub fn appends(pre: &Sfa, event: Sfa) -> Sfa {
        Sfa::concat(pre.clone(), Sfa::and(vec![event, Sfa::last()]))
    }
}

#[cfg(test)]
mod tests {
    use super::events::*;
    use super::*;

    fn kv_put_sig() -> EffOpSig {
        let path = Sort::named("Path.t");
        let bytes = Sort::named("Bytes.t");
        let pre = Sfa::universe();
        let event = ev(
            "put",
            &["key", "val"],
            Formula::and(vec![
                Formula::eq(Term::var("key"), Term::var("k")),
                Formula::eq(Term::var("val"), Term::var("a")),
            ]),
        );
        EffOpSig {
            ghosts: vec![],
            params: vec![
                ("k".into(), RType::base(path)),
                ("a".into(), RType::base(bytes)),
            ],
            cases: vec![HoareCase {
                pre: pre.clone(),
                ty: RType::base(Sort::Unit),
                post: appends(&pre, event),
            }],
        }
    }

    #[test]
    fn instantiation_substitutes_parameters() {
        let sig = kv_put_sig();
        let cases = sig.instantiate(&[Term::var("path"), Term::var("bytes")]);
        assert_eq!(cases.len(), 1);
        let fv = cases[0].post.free_vars();
        assert!(fv.contains("path"));
        assert!(fv.contains("bytes"));
        assert!(!fv.contains("k"));
        assert!(!fv.contains("a"));
    }

    #[test]
    fn instantiation_is_simultaneous() {
        // Regression: found by `marple fuzz` (reproducer `gen/s99-i5-m1-n0`). When an
        // *argument* shares a name with a *later* declared parameter — here calling
        // `put k a` with arguments `(a, z)` — sequential substitution first rewrites
        // the case's `k` to `a` and then wrongly rewrites that `a` again to `z`,
        // flipping the verdict of a provably correct method. Simultaneous substitution
        // must leave the argument `a` alone.
        let sig = kv_put_sig();
        let cases = sig.instantiate(&[Term::var("a"), Term::var("z")]);
        let q = cases[0].post.to_string();
        assert!(
            q.contains("key == a") && q.contains("val == z"),
            "clobbered instantiation: {q}"
        );
    }

    #[test]
    fn alphabet_exposes_operator_sorts() {
        let mut delta = Delta::new();
        delta.declare_eff("put", kv_put_sig());
        let alpha = delta.alphabet();
        assert_eq!(alpha.len(), 1);
        assert_eq!(alpha[0].name, "put");
        assert_eq!(alpha[0].args.len(), 2);
        assert_eq!(alpha[0].ret, Sort::Unit);
    }

    #[test]
    fn basic_ctx_reflects_signatures() {
        let mut delta = Delta::new();
        delta.declare_eff("put", kv_put_sig());
        delta.declare_pure(
            "parent",
            PureOpSig {
                params: vec![("p".into(), RType::base(Sort::named("Path.t")))],
                ret: RType::singleton(
                    Sort::named("Path.t"),
                    Term::app("parent", vec![Term::var("p")]),
                ),
            },
        );
        let ctx = delta.basic_ctx();
        assert!(ctx.eff_ops.contains_key("put"));
        assert!(ctx.pure_ops.contains_key("parent"));
    }

    #[test]
    fn pure_sig_instantiation() {
        let sig = PureOpSig {
            params: vec![("p".into(), RType::base(Sort::named("Path.t")))],
            ret: RType::singleton(
                Sort::named("Path.t"),
                Term::app("parent", vec![Term::var("p")]),
            ),
        };
        let t = sig.instantiate(&[Term::var("path")]);
        assert_eq!(
            t.qualifier_at("pp").unwrap(),
            Formula::eq(
                Term::var("pp"),
                Term::app("parent", vec![Term::var("path")])
            )
        );
    }

    #[test]
    fn extend_merges_libraries() {
        let mut a = Delta::new();
        a.declare_eff("put", kv_put_sig());
        let mut b = Delta::new();
        b.declare_eff("exists", kv_put_sig());
        b.extend(&a);
        assert_eq!(b.eff_ops.len(), 2);
    }
}
