//! # hat-core
//!
//! Hoare Automata Types (HATs): the refinement-and-effect type system of
//! *"A HAT Trick: Automatically Verifying Representation Invariants Using Symbolic Finite
//! Automata"* (PLDI 2024), reimplemented in Rust.
//!
//! A HAT `[A] {ν:b | φ} [B]` qualifies a stateful computation with a *precondition
//! automaton* `A` describing the effect contexts in which it may run and a *postcondition
//! automaton* `B` describing the context extended with the effects it performs. Checking
//! that an ADT method preserves its representation invariant `I` amounts to checking the
//! method against `[I] t [I]`, which this crate reduces to SMT queries (`hat-logic`) and
//! symbolic-automaton inclusion checks (`hat-sfa`).
//!
//! The crate provides:
//!
//! * [`rty`] — pure refinement types and HATs, with substitution and erasure,
//! * [`ctx`] — typing contexts and their logical projection,
//! * [`delta`] — the built-in operator typing context `Δ` (library specifications),
//! * [`subtype`] — the subtyping rules (`SubBaseAlg`, `SubHoare`),
//! * [`abduce`] — ghost-variable instantiation,
//! * [`check`] — the bidirectional checker together with the per-method statistics used to
//!   regenerate the paper's evaluation tables.

pub mod abduce;
pub mod check;
pub mod ctx;
pub mod delta;
pub mod rty;
pub mod subtype;

pub use check::{CheckError, CheckStats, Checker, MethodReport, MethodSig};
pub use ctx::TypeCtx;
pub use delta::{Delta, EffOpSig, HoareCase, PureOpSig};
pub use rty::{HType, RType, NU};
