//! Typing contexts (paper Fig. 4): sequences of bindings of variables to *pure* refinement
//! types. HATs are deliberately not allowed in contexts (they describe computations, not
//! values).

use crate::rty::RType;
use hat_logic::{Formula, Ident, Sort};
use hat_sfa::VarCtx;

/// A typing context `Γ`.
#[derive(Debug, Clone, Default)]
pub struct TypeCtx {
    bindings: Vec<(Ident, RType)>,
}

impl TypeCtx {
    /// The empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extends the context with a binding (returns a new context; contexts are persistent
    /// so branches of a match can extend independently).
    pub fn push(&self, x: impl Into<Ident>, t: RType) -> TypeCtx {
        let mut c = self.clone();
        c.bindings.push((x.into(), t));
        c
    }

    /// Looks up a variable.
    pub fn lookup(&self, x: &str) -> Option<&RType> {
        self.bindings
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t)
    }

    /// Iterates over the bindings, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Ident, RType)> {
        self.bindings.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The logical content of the context: variable sorts and facts, in the form consumed
    /// by the SMT solver and the automaton inclusion checker.
    pub fn logical(&self) -> VarCtx {
        let mut vars: Vec<(Ident, Sort)> = Vec::new();
        let mut facts: Vec<Formula> = Vec::new();
        for (x, t) in &self.bindings {
            match t {
                RType::Base { sort, .. } => {
                    vars.push((x.clone(), sort.clone()));
                    if let Some(q) = t.qualifier_at(x) {
                        if q != Formula::True {
                            facts.push(q);
                        }
                    }
                }
                // Function-typed bindings contribute no first-order facts.
                RType::Arrow { .. } | RType::Ghost { .. } => {}
            }
        }
        VarCtx::new(vars, facts)
    }

    /// Adds a bare logical fact by binding an anonymous unit variable refined by it
    /// (the standard refinement-typing encoding of path conditions).
    pub fn assume(&self, fact: Formula) -> TypeCtx {
        let name = format!("_h{}", self.bindings.len());
        self.push(
            name,
            RType::Base {
                sort: Sort::Unit,
                qualifier: fact,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::Term;

    #[test]
    fn lookup_and_shadowing() {
        let ctx = TypeCtx::new()
            .push("x", RType::base(Sort::Int))
            .push("x", RType::base(Sort::Bool));
        assert_eq!(ctx.lookup("x").unwrap().sort(), Some(&Sort::Bool));
        assert!(ctx.lookup("y").is_none());
        assert_eq!(ctx.len(), 2);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn logical_projection_collects_sorts_and_facts() {
        let ctx = TypeCtx::new()
            .push(
                "n",
                RType::refined(
                    Sort::Int,
                    Formula::lt(Term::int(0), Term::var(crate::rty::NU)),
                ),
            )
            .push("b", RType::base(Sort::Bool));
        let l = ctx.logical();
        assert_eq!(l.vars.len(), 2);
        assert_eq!(l.facts.len(), 1);
        assert_eq!(l.facts[0], Formula::lt(Term::int(0), Term::var("n")));
    }

    #[test]
    fn assume_adds_a_fact() {
        let ctx = TypeCtx::new().assume(Formula::pred("isDir", vec![Term::var("b")]));
        let l = ctx.logical();
        assert_eq!(l.facts.len(), 1);
    }

    #[test]
    fn arrow_bindings_do_not_pollute_facts() {
        let arrow = RType::arrow(
            "x",
            RType::base(Sort::Int),
            crate::rty::HType::Pure(RType::base(Sort::Int)),
        );
        let ctx = TypeCtx::new().push("f", arrow);
        let l = ctx.logical();
        assert!(l.vars.is_empty());
        assert!(l.facts.is_empty());
    }
}
