//! Subtyping for refinement types and HATs (paper Fig. 5 / Fig. 13).

use crate::ctx::TypeCtx;
use crate::rty::{RType, NU};
use hat_logic::Sort;
use hat_sfa::{InclusionChecker, Sfa, SolverOracle};

/// `Γ ⊢ {ν | φ₁} <: {ν | φ₂}` — rule `SubBaseAlg`: the context facts and `φ₁` must entail
/// `φ₂` (an SMT validity query). The solver is abstracted as a [`SolverOracle`] so the
/// same rule runs against a bare [`hat_logic::Solver`] or a caching wrapper.
pub fn sub_base(solver: &mut dyn SolverOracle, ctx: &TypeCtx, sub: &RType, sup: &RType) -> bool {
    match (sub, sup) {
        (
            RType::Base {
                sort: s1,
                qualifier: q1,
            },
            RType::Base {
                sort: s2,
                qualifier: q2,
            },
        ) => {
            if s1 != s2 && !(s1 == &Sort::Int && s2 == &Sort::Int) {
                // Distinct base sorts are never subtypes (nat/int conflation happens earlier).
                if s1.name() != s2.name() {
                    return false;
                }
            }
            let logical = ctx.logical();
            let mut vars = logical.vars.clone();
            vars.push((NU.to_string(), s1.clone()));
            let mut hyps = logical.facts.clone();
            hyps.push(q1.clone());
            solver.entails(&vars, &hyps, q2)
        }
        // Structural rule for arrows: parameters contravariant, results covariant.
        // The benchmarks only require reflexivity here, so equality is sufficient and safe.
        (RType::Arrow { .. }, RType::Arrow { .. }) => sub == sup,
        (RType::Ghost { body, .. }, _) => sub_base(solver, ctx, body, sup),
        (_, RType::Ghost { var, sort, body }) => {
            let extended = ctx.push(var.clone(), RType::base(sort.clone()));
            sub_base(solver, &extended, sub, body)
        }
        _ => false,
    }
}

/// `Γ ⊢ [A₁] t₁ [B₁] <: [A₂] t₂ [B₂]` — rule `SubHoare`: contravariant on preconditions,
/// covariant on result types and postconditions (under the stronger precondition context).
#[allow(clippy::too_many_arguments)]
pub fn sub_hoare(
    solver: &mut dyn SolverOracle,
    inclusion: &mut InclusionChecker,
    ctx: &TypeCtx,
    pre1: &Sfa,
    ty1: &RType,
    post1: &Sfa,
    pre2: &Sfa,
    ty2: &RType,
    post2: &Sfa,
) -> bool {
    let logical = ctx.logical();
    let pre_ok = inclusion
        .check(&logical, pre2, pre1, solver)
        .unwrap_or(false);
    if !pre_ok {
        return false;
    }
    if !sub_base(solver, ctx, ty1, ty2) {
        return false;
    }
    let guard = Sfa::concat(pre2.clone(), Sfa::universe());
    let lhs = Sfa::and(vec![guard.clone(), post1.clone()]);
    let rhs = Sfa::and(vec![guard, post2.clone()]);
    inclusion
        .check(&logical, &lhs, &rhs, solver)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Formula, Solver, Term};
    use hat_sfa::OpSig;

    fn int_ctx() -> TypeCtx {
        TypeCtx::new().push(
            "n",
            RType::refined(Sort::Int, Formula::lt(Term::int(0), Term::var(NU))),
        )
    }

    #[test]
    fn base_subtyping_uses_context_facts() {
        let mut solver = Solver::default();
        let ctx = int_ctx();
        // {ν | ν = n} <: {ν | 0 < ν} because the context knows 0 < n.
        let sub = RType::singleton(Sort::Int, Term::var("n"));
        let sup = RType::refined(Sort::Int, Formula::lt(Term::int(0), Term::var(NU)));
        assert!(sub_base(&mut solver, &ctx, &sub, &sup));
        // The converse fails.
        assert!(!sub_base(&mut solver, &ctx, &sup, &sub));
    }

    #[test]
    fn every_base_type_is_a_subtype_of_top() {
        let mut solver = Solver::default();
        let ctx = TypeCtx::new();
        let sub = RType::bool_singleton(true);
        assert!(sub_base(&mut solver, &ctx, &sub, &RType::base(Sort::Bool)));
        assert!(!sub_base(&mut solver, &ctx, &RType::base(Sort::Bool), &sub));
    }

    #[test]
    fn mismatched_sorts_are_rejected() {
        let mut solver = Solver::default();
        let ctx = TypeCtx::new();
        assert!(!sub_base(
            &mut solver,
            &ctx,
            &RType::base(Sort::Int),
            &RType::base(Sort::Bool)
        ));
    }

    #[test]
    fn hoare_subtyping_is_contravariant_in_preconditions() {
        let mut solver = Solver::default();
        let ops = vec![OpSig::new(
            "insert",
            vec![("x".into(), Sort::Int)],
            Sort::Unit,
        )];
        let mut inclusion = InclusionChecker::new(ops);
        let ctx = TypeCtx::new().push("el", RType::base(Sort::Int));
        let ins_el = Sfa::event(
            "insert",
            vec!["x".into()],
            "res",
            Formula::eq(Term::var("x"), Term::var("el")),
        );
        let never = Sfa::globally(Sfa::not(ins_el.clone()));
        let unit = RType::base(Sort::Unit);
        // [universe] unit [never] <: [never] unit [universe]
        assert!(sub_hoare(
            &mut solver,
            &mut inclusion,
            &ctx,
            &Sfa::universe(),
            &unit,
            &never,
            &never,
            &unit,
            &Sfa::universe(),
        ));
        // [never] unit [never] is not a supertype of [universe] unit [universe]:
        // the precondition inclusion (never ⊆ universe holds) but postconditions fail.
        assert!(!sub_hoare(
            &mut solver,
            &mut inclusion,
            &ctx,
            &Sfa::universe(),
            &unit,
            &Sfa::universe(),
            &never,
            &unit,
            &Sfa::and(vec![never.clone(), Sfa::not(Sfa::Epsilon)]),
        ));
    }
}
