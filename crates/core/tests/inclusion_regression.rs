//! Regression test: the finite-alphabet abstraction must not conflate distinct context
//! variables across trace positions (the "bridge literal" issue found while checking the
//! guarded Set.insert method).

use hat_core::rty::NU;
use hat_logic::{Formula, Solver, Sort, Term};
use hat_sfa::{InclusionChecker, OpSig, Sfa, VarCtx};

fn ev(op: &str, args: &[&str], phi: Formula) -> Sfa {
    Sfa::event(op, args.iter().map(|s| s.to_string()).collect(), NU, phi)
}

fn ins_el() -> Sfa {
    ev(
        "insert",
        &["y"],
        Formula::eq(Term::var("y"), Term::var("el")),
    )
}

fn inv() -> Sfa {
    Sfa::globally(Sfa::implies(
        ins_el(),
        Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
    ))
}

fn ops() -> Vec<OpSig> {
    vec![
        OpSig::new("insert", vec![("x".into(), Sort::Int)], Sort::Unit),
        OpSig::new("mem", vec![("x".into(), Sort::Int)], Sort::Bool),
    ]
}

#[test]
fn set_insert_branch_preconditions_are_precise() {
    let ctx = VarCtx::new(
        vec![("el".into(), Sort::Int), ("elem".into(), Sort::Int)],
        vec![],
    );
    let mut checker = InclusionChecker::new(ops());
    let mut solver = Solver::default();

    let one = |e: Sfa| Sfa::and(vec![e, Sfa::last()]);
    let present = Sfa::eventually(ev(
        "insert",
        &["y"],
        Formula::eq(Term::var("y"), Term::var("elem")),
    ));
    let absent = Sfa::not(present.clone());
    let mem_ev = |r: bool| {
        ev(
            "mem",
            &["y"],
            Formula::and(vec![
                Formula::eq(Term::var("y"), Term::var("elem")),
                Formula::eq(Term::var(NU), Term::bool(r)),
            ]),
        )
    };

    // Case "present", true arm: pre1 = (I; <T>&LAST) & (present; mem_true&LAST)
    let pre1 = Sfa::and(vec![
        Sfa::concat(inv(), one(Sfa::any_event())),
        Sfa::concat(present.clone(), one(mem_ev(true))),
    ]);
    let r1 = checker.check(&ctx, &pre1, &inv(), &mut solver).unwrap();
    let _ = format!("present/true-arm tail inclusion: {r1}");

    // Case "absent", false arm after insert:
    let pre_mem = Sfa::and(vec![
        Sfa::concat(inv(), one(Sfa::any_event())),
        Sfa::concat(absent.clone(), one(mem_ev(false))),
    ]);
    let pre2 = Sfa::and(vec![
        Sfa::concat(pre_mem, one(Sfa::any_event())),
        Sfa::concat(
            Sfa::universe(),
            one(ev(
                "insert",
                &["y"],
                Formula::eq(Term::var("y"), Term::var("elem")),
            )),
        ),
    ]);
    let r2 = checker.check(&ctx, &pre2, &inv(), &mut solver).unwrap();
    let _ = format!("absent/false-arm tail inclusion: {r2}");

    assert!(r1 && r2, "r1={r1} r2={r2}");
}
