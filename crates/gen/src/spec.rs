//! The generation IR: a [`GenSpec`] is the *recipe* for one verification configuration.
//!
//! A spec is pure data drawn deterministically from a `(seed, index)` pair, and
//! [`GenSpec::build`](crate::GenSpec::build) turns it into a `hat_suite::Benchmark`
//! whose per-method verdicts are known by construction. Keeping the recipe separate
//! from the built configuration is what makes the rest of the tooling cheap:
//!
//! * **naming** — the recipe round-trips through the configuration's library name
//!   (`s<seed>-i<index>[-m<kept methods>][-n0]`), so a daemon can regenerate the exact
//!   configuration server-side from the name alone, and
//! * **shrinking** — the shrinker edits the recipe (drop a method, strip the noise
//!   calls) rather than the built syntax tree, so every shrink candidate is still a
//!   well-sorted configuration with known verdicts.
//!
//! The draw order of [`draw`] is part of the reproducibility contract: it only ever
//! consumes randomness from the single shared `hat_testkit::XorShift` stream, so one
//! printed seed replays the whole configuration.

use hat_logic::Sort;
use hat_testkit::XorShift;
use std::fmt;

/// The invariant families the generator draws from. Each family mirrors an invariant
/// shape that the hand-written suite already verifies, so an OK verdict is not just
/// semantically true but demonstrably within the checker's competence (the fuzzer's
/// job is to confirm that stays true across the whole knob matrix, not to probe
/// checker completeness on alien shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `at_most_once(⟨add ā | a0 = g⟩)` with a membership probe — the Set/DFA-KVStore
    /// uniqueness shape.
    Uniqueness,
    /// `□¬⟨pair ā | a0 = g ∧ a1 = g⟩` with a pure equality guard — the
    /// ConnectedGraph/Graph no-self-loop shape.
    ForbiddenPair,
    /// `♦⟨use ā | a0 = g⟩ ⇒ ♦⟨link ā | a0 = g⟩` — the MinSet cached-element shape.
    Link,
    /// `□¬(⟨conn | a0 = g⟩ ∧ ◯(¬⟨disc | a0 = g⟩ U ⟨conn | a0 = g⟩))` — the DFA/Graph
    /// determinism (disconnect-before-reconnect) shape.
    Alternation,
}

impl Family {
    /// Short lower-case tag used in descriptions and snapshots.
    pub fn tag(self) -> &'static str {
        match self {
            Family::Uniqueness => "uniqueness",
            Family::ForbiddenPair => "forbidden-pair",
            Family::Link => "link",
            Family::Alternation => "alternation",
        }
    }
}

/// The OK body shapes, i.e. method implementations that provably preserve the family's
/// invariant. Each shape is a template instantiated with the spec's drawn names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodShape {
    /// `return ()` — touches nothing.
    Ret,
    /// Uniqueness: `let b = probe k in return b` — a pure observation.
    Probe,
    /// Uniqueness: probe-guarded add (the paper's §2 guarded insert).
    GuardedAdd,
    /// Uniqueness: add guarded by a pure `k = g` comparison with the ghost — adding an
    /// element provably different from the tracked one cannot duplicate it.
    PureGuardedAdd,
    /// Uniqueness: two sequential probe-guarded adds on two different parameters.
    DoubleGuardedAdd,
    /// ForbiddenPair: pair op guarded by a pure `s = t` comparison.
    PairGuardedAdd,
    /// Link: `link k; use k` — records the element before using it.
    LinkThenUse,
    /// Link: `link k` alone — registering without using is always safe.
    LinkOnly,
    /// Link: `use k; link k` — the implication constrains only the final trace, so
    /// establishing the link after the use still satisfies it.
    UseThenLink,
    /// Alternation: `disc (s, old); conn (s, t)` — the verified replace-transition
    /// pattern.
    SwapThenAdd,
    /// Alternation: `disc (s, t)` alone — removing never violates determinism.
    ClearOnly,
}

impl MethodShape {
    /// Short tag used in descriptions and snapshots.
    pub fn tag(self) -> &'static str {
        match self {
            MethodShape::Ret => "ret",
            MethodShape::Probe => "probe",
            MethodShape::GuardedAdd => "guarded-add",
            MethodShape::PureGuardedAdd => "pure-guarded-add",
            MethodShape::DoubleGuardedAdd => "double-guarded-add",
            MethodShape::PairGuardedAdd => "pair-guarded-add",
            MethodShape::LinkThenUse => "link-then-use",
            MethodShape::LinkOnly => "link-only",
            MethodShape::UseThenLink => "use-then-link",
            MethodShape::SwapThenAdd => "swap-then-add",
            MethodShape::ClearOnly => "clear-only",
        }
    }
}

/// The verdict-flipping mutation catalogue. Every mutation is applicable only to
/// shapes where it *provably* breaks the invariant (see `docs/FUZZING.md` for the
/// violating-trace argument of each entry), so a mutated method's expected verdict is
/// FAIL by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove the guard: the unguarded add/conn may duplicate the tracked element
    /// (uniqueness), alias the forbidden pair, or reconnect without a disconnect.
    DropGuard,
    /// Swap the guard's branches: act exactly when the guard says not to.
    NegateGuard,
    /// Guard one parameter but add another: the guard proves nothing about the key
    /// actually written.
    WrongKey,
    /// Perform the add twice inside the guard: the second add duplicates the element
    /// the first one just made present.
    DoubleAdd,
    /// Widen the invariant's event qualifier from `a0 = g` to `⊤` in this method's
    /// signature: "never add the tracked element twice" becomes "never add anything
    /// twice", which a guarded add of a *fresh* element still violates.
    WidenQualifier,
    /// Pass the same variable for both pair positions — the forbidden pair itself.
    AliasArg,
    /// Skip the link event and go straight to the use: the implication's right side
    /// never becomes true.
    SkipLink,
    /// Link one key but use another.
    WrongKeyLink,
    /// Permute the disconnect/connect pair: connecting before disconnecting leaves a
    /// window with two live connections.
    PermutePair,
    /// Connect twice with no disconnect in between — the classic determinism bug.
    DoubleConnect,
}

impl Mutation {
    /// Short tag used in descriptions and snapshots.
    pub fn tag(self) -> &'static str {
        match self {
            Mutation::DropGuard => "drop-guard",
            Mutation::NegateGuard => "negate-guard",
            Mutation::WrongKey => "wrong-key",
            Mutation::DoubleAdd => "double-add",
            Mutation::WidenQualifier => "widen-qualifier",
            Mutation::AliasArg => "alias-arg",
            Mutation::SkipLink => "skip-link",
            Mutation::WrongKeyLink => "wrong-key-link",
            Mutation::PermutePair => "permute-pair",
            Mutation::DoubleConnect => "double-connect",
        }
    }

    /// The mutations that provably flip the verdict of a given shape.
    pub fn applicable(family: Family, shape: MethodShape) -> &'static [Mutation] {
        use Family::*;
        use MethodShape::*;
        use Mutation::*;
        match (family, shape) {
            (Uniqueness, GuardedAdd) => {
                &[DropGuard, NegateGuard, WrongKey, DoubleAdd, WidenQualifier]
            }
            (Uniqueness, PureGuardedAdd) => &[DropGuard, NegateGuard, WidenQualifier],
            (Uniqueness, DoubleGuardedAdd) => &[DropGuard, WidenQualifier],
            (ForbiddenPair, PairGuardedAdd) => &[DropGuard, NegateGuard, AliasArg],
            (Link, LinkThenUse) => &[SkipLink, WrongKeyLink],
            (Link, UseThenLink) => &[SkipLink],
            (Alternation, SwapThenAdd) => &[PermutePair, DoubleConnect, DropGuard],
            _ => &[],
        }
    }
}

/// One generated method: a shape, an optional verdict-flipping mutation, and the drawn
/// names it is instantiated with.
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// The OK template.
    pub shape: MethodShape,
    /// `Some` turns the method into a FAIL entry.
    pub mutation: Option<Mutation>,
    /// Method name (unique within the configuration).
    pub name: String,
    /// Key-sorted parameter names, in positional order.
    pub key_params: Vec<String>,
    /// Extra value/label parameter when the main operator's arity asks for one.
    pub extra_param: Option<String>,
    /// Guard binder name (probe result or pure comparison result).
    pub guard_binder: String,
    /// Indices into the spec's noise operators called as a prefix of the body.
    pub noise_calls: Vec<usize>,
}

impl MethodSpec {
    /// The constructed verdict: OK unless a mutation was applied.
    pub fn expect_verified(&self) -> bool {
        self.mutation.is_none()
    }

    /// `shape` or `shape+mutation` tag, as rendered in snapshots.
    pub fn tag(&self) -> String {
        match self.mutation {
            None => self.shape.tag().to_string(),
            Some(m) => format!("{}+{}", self.shape.tag(), m.tag()),
        }
    }
}

/// Shrinker edits applied on top of the drawn spec. Encoded in the configuration name
/// so even a shrunk reproducer can be regenerated from its name alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Edits {
    /// Keep only these method indices (into the drawn method list). `None` keeps all.
    pub keep: Option<Vec<usize>>,
    /// Strip all noise-operator calls from every method body.
    pub strip_noise: bool,
}

/// The full recipe for one generated configuration.
#[derive(Debug, Clone)]
pub struct GenSpec {
    /// Stream seed this spec was drawn from.
    pub seed: u64,
    /// Index within the seed's stream.
    pub index: u64,
    /// Invariant family.
    pub family: Family,
    /// The sort of keys/elements (ints or an uninterpreted named sort).
    pub key_sort: Sort,
    /// Whether a (semantically inert) method-predicate axiom set is attached,
    /// exercising the engine's axiom-fingerprint cache keying.
    pub with_axioms: bool,
    /// The invariant-tracked operator (add / pair / use / connect).
    pub main_op: String,
    /// Arity of the main operator (key + optional value/label positions).
    pub main_arity: usize,
    /// The auxiliary operator (probe / link / disconnect); unused by ForbiddenPair.
    pub aux_op: String,
    /// Extra operators unrelated to the invariant: `(name, arity)`.
    pub noise_ops: Vec<(String, usize)>,
    /// Ghost variable name of the invariant.
    pub ghost: String,
    /// The drawn methods.
    pub methods: Vec<MethodSpec>,
    /// Shrinker edits (identity for a freshly drawn spec).
    pub edits: Edits,
}

impl GenSpec {
    /// The configuration's ADT name (all generated configurations share it).
    pub fn adt(&self) -> &'static str {
        "gen"
    }

    /// The configuration's library name — the `(seed, index, edits)` recipe:
    /// `s<seed>-i<index>[-m<kept method indices>][-n0]`.
    pub fn library_name(&self) -> String {
        let mut name = format!("s{}-i{}", self.seed, self.index);
        if let Some(keep) = &self.edits.keep {
            name.push_str("-m");
            for i in keep {
                name.push_str(&i.to_string());
            }
        }
        if self.edits.strip_noise {
            name.push_str("-n0");
        }
        name
    }

    /// Method indices that survive the current edits.
    pub fn live_methods(&self) -> Vec<usize> {
        match &self.edits.keep {
            Some(keep) => keep.clone(),
            None => (0..self.methods.len()).collect(),
        }
    }
}

impl fmt::Display for GenSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen/{} family={} sort={} axioms={} main={}/{} aux={}",
            self.library_name(),
            self.family.tag(),
            self.key_sort,
            self.with_axioms,
            self.main_op,
            self.main_arity,
            if self.aux_op.is_empty() {
                "-"
            } else {
                &self.aux_op
            },
        )?;
        if !self.noise_ops.is_empty() {
            write!(f, " noise=[")?;
            for (i, (n, a)) in self.noise_ops.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{n}/{a}")?;
            }
            write!(f, "]")?;
        }
        write!(f, " methods=[")?;
        for (i, &m) in self.live_methods().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            let m = &self.methods[m];
            write!(f, "{}{{{}}}", m.name, m.tag())?;
        }
        write!(f, "]")
    }
}

/// Parses a library name produced by [`GenSpec::library_name`] back into its
/// `(seed, index, edits)` recipe.
pub fn parse_library_name(lib: &str) -> Option<(u64, u64, Edits)> {
    let mut parts = lib.split('-');
    let seed = parts.next()?.strip_prefix('s')?.parse().ok()?;
    let index = parts.next()?.strip_prefix('i')?.parse().ok()?;
    let mut edits = Edits::default();
    for p in parts {
        if let Some(digits) = p.strip_prefix('m') {
            if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
                return None;
            }
            edits.keep = Some(
                digits
                    .chars()
                    .map(|c| c.to_digit(10).unwrap() as usize)
                    .collect(),
            );
        } else if p == "n0" {
            edits.strip_noise = true;
        } else {
            return None;
        }
    }
    Some((seed, index, edits))
}

// Name pools. The pools are mutually disjoint so drawn names can never collide across
// roles (operator vs parameter vs ghost vs binder); within a role, draws are made
// without replacement.
const MAIN_OPS: &[&str] = &[
    "insert", "put", "push", "connect", "record", "store", "write", "append",
];
const PROBE_OPS: &[&str] = &["mem", "exists", "has", "contains", "seen", "lookup"];
const LINK_OPS: &[&str] = &["register", "reserve", "declare", "intern"];
const CLEAR_OPS: &[&str] = &["remove", "disconnect", "evict", "release"];
const NOISE_OPS: &[&str] = &["log", "touch", "ping", "audit", "mark"];
const METHOD_VERBS: &[&str] = &[
    "apply", "update", "admit", "commit", "ingest", "sync", "refresh", "settle",
];
const PARAM_NAMES: &[&str] = &["x", "k", "key", "item", "v", "p", "q", "elem"];
const GHOST_NAMES: &[&str] = &["el", "g", "n", "tgt"];
const BINDER_NAMES: &[&str] = &["b", "present", "was", "ok", "r"];

/// Draws `k` distinct names from a pool, optionally suffixing each with a drawn digit
/// (the suffix exercises cache-key α-discipline: configurations differing only in
/// operator names must never share a memo entry by accident).
fn draw_names(rng: &mut XorShift, pool: &[&str], k: usize) -> Vec<String> {
    let mut picked: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..k.min(pool.len()) {
        let mut i = rng.below(pool.len() as u64) as usize;
        while picked.contains(&i) {
            i = (i + 1) % pool.len();
        }
        picked.push(i);
        let mut name = pool[i].to_string();
        if rng.flip() {
            name.push_str(&rng.below(10).to_string());
        }
        out.push(name);
    }
    out
}

/// Derives the per-index stream seed. `(seed, index)` pairs get well-separated
/// xorshift states via a golden-ratio mix (the same constant the pinned differential
/// seeds use).
fn mix(seed: u64, index: u64) -> u64 {
    seed ^ (index.wrapping_add(1)).wrapping_mul(0x9e3779b97f4a7c15)
}

/// Draws the spec for `(seed, index)`. Deterministic: the same pair always yields the
/// same spec, and the draw order below is a compatibility contract with committed
/// corpus snapshots.
pub fn draw(seed: u64, index: u64) -> GenSpec {
    let mut rng = XorShift::seeded(mix(seed, index));

    let family = *rng.pick(&[
        Family::Uniqueness,
        Family::ForbiddenPair,
        Family::Link,
        Family::Alternation,
    ]);
    let key_sort = match rng.below(4) {
        0 => Sort::Int,
        1 => Sort::named("Elem.t"),
        2 => Sort::named("Node.t"),
        _ => Sort::named("Key.t"),
    };
    let with_axioms = rng.flip();

    let main_arity = match family {
        // key (+ optional stored value)
        Family::Uniqueness => 1 + rng.below(2) as usize,
        // (src, dst) (+ optional label)
        Family::ForbiddenPair => 2 + rng.below(2) as usize,
        Family::Link => 1,
        Family::Alternation => 2,
    };

    let main_op = draw_names(&mut rng, MAIN_OPS, 1).remove(0);
    let aux_op = match family {
        Family::Uniqueness => draw_names(&mut rng, PROBE_OPS, 1).remove(0),
        Family::ForbiddenPair => String::new(),
        Family::Link => draw_names(&mut rng, LINK_OPS, 1).remove(0),
        Family::Alternation => draw_names(&mut rng, CLEAR_OPS, 1).remove(0),
    };
    let noise_count = rng.below(3) as usize;
    let noise_ops: Vec<(String, usize)> = draw_names(&mut rng, NOISE_OPS, noise_count)
        .into_iter()
        .map(|n| (n, 1 + rng.below(2) as usize))
        .collect();
    let ghost = draw_names(&mut rng, GHOST_NAMES, 1).remove(0);

    let n_methods = 1 + rng.below(4) as usize;
    let mut methods = Vec::new();
    for mi in 0..n_methods {
        let shapes: &[MethodShape] = match family {
            Family::Uniqueness => &[
                MethodShape::Ret,
                MethodShape::Probe,
                MethodShape::GuardedAdd,
                MethodShape::GuardedAdd, // weighted: the interesting shape
                MethodShape::PureGuardedAdd,
                MethodShape::DoubleGuardedAdd,
            ],
            Family::ForbiddenPair => &[
                MethodShape::Ret,
                MethodShape::PairGuardedAdd,
                MethodShape::PairGuardedAdd,
            ],
            Family::Link => &[
                MethodShape::Ret,
                MethodShape::LinkOnly,
                MethodShape::LinkThenUse,
                MethodShape::LinkThenUse,
                MethodShape::UseThenLink,
            ],
            Family::Alternation => &[
                MethodShape::Ret,
                MethodShape::ClearOnly,
                MethodShape::SwapThenAdd,
                MethodShape::SwapThenAdd,
            ],
        };
        let shape = *rng.pick(shapes);
        let applicable = Mutation::applicable(family, shape);
        let mutation = if !applicable.is_empty() && rng.below(5) < 2 {
            Some(*rng.pick(applicable))
        } else {
            None
        };

        let n_keys = key_param_count(family, shape, mutation);
        let key_params = draw_names(&mut rng, PARAM_NAMES, n_keys);
        let extra_param = match family {
            Family::Uniqueness if main_arity == 2 => Some("val_arg".to_string()),
            Family::ForbiddenPair if main_arity == 3 => Some("lbl_arg".to_string()),
            _ => None,
        };
        let guard_binder = draw_names(&mut rng, BINDER_NAMES, 1).remove(0);
        let noise_calls: Vec<usize> = (0..noise_ops.len()).filter(|_| rng.flip()).collect();
        let verb = *rng.pick(METHOD_VERBS);
        methods.push(MethodSpec {
            shape,
            mutation,
            name: format!("{verb}_m{mi}"),
            key_params,
            extra_param,
            guard_binder,
            noise_calls,
        });
    }

    GenSpec {
        seed,
        index,
        family,
        key_sort,
        with_axioms,
        main_op,
        main_arity,
        aux_op,
        noise_ops,
        ghost,
        methods,
        edits: Edits::default(),
    }
}

/// How many key-sorted parameters a method needs for its shape and mutation.
fn key_param_count(family: Family, shape: MethodShape, mutation: Option<Mutation>) -> usize {
    use MethodShape::*;
    let base = match (family, shape) {
        (Family::ForbiddenPair, _) => 2,
        (Family::Alternation, SwapThenAdd) => 3,
        (Family::Alternation, _) => 2,
        (_, DoubleGuardedAdd) => 2,
        _ => 1,
    };
    let extra = matches!(
        mutation,
        Some(Mutation::WrongKey) | Some(Mutation::WrongKeyLink)
    );
    base + usize::from(extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drawing_is_deterministic() {
        for i in 0..32 {
            let a = draw(7, i);
            let b = draw(7, i);
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn name_round_trips() {
        let mut s = draw(11, 3);
        assert_eq!(
            parse_library_name(&s.library_name()),
            Some((11, 3, Edits::default()))
        );
        s.edits.keep = Some(vec![0, 2]);
        s.edits.strip_noise = true;
        let (seed, index, edits) = parse_library_name(&s.library_name()).unwrap();
        assert_eq!((seed, index), (11, 3));
        assert_eq!(edits.keep, Some(vec![0, 2]));
        assert!(edits.strip_noise);
        assert!(parse_library_name("s1-i2-zz").is_none());
        assert!(parse_library_name("nonsense").is_none());
    }

    #[test]
    fn mutations_only_apply_where_catalogued() {
        for seed in 1..6u64 {
            for i in 0..64 {
                let s = draw(seed, i);
                for m in &s.methods {
                    if let Some(mu) = m.mutation {
                        assert!(
                            Mutation::applicable(s.family, m.shape).contains(&mu),
                            "{mu:?} drawn for inapplicable {:?}/{:?}",
                            s.family,
                            m.shape
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn the_stream_covers_every_family_and_mutation() {
        let mut families = std::collections::BTreeSet::new();
        let mut mutations = std::collections::BTreeSet::new();
        for i in 0..512 {
            let s = draw(1, i);
            families.insert(s.family.tag());
            for m in &s.methods {
                if let Some(mu) = m.mutation {
                    mutations.insert(mu.tag());
                }
            }
        }
        assert_eq!(families.len(), 4, "families seen: {families:?}");
        assert!(mutations.len() >= 9, "mutations seen: {mutations:?}");
    }
}
