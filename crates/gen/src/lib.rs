//! # hat-gen
//!
//! A deterministic, seedable generator of **verdict-known** HAT verification
//! configurations, and the fuzz driver that runs them through the whole stack
//! (checker → engine knob matrix → memo tiers → LSM cache → daemon wire) asserting
//! every observed verdict against the constructed one.
//!
//! The strongest invariant this repository maintains is that *verdicts are a pure
//! function of the configuration*: every engine knob, cache tier, and transport must
//! report exactly what the plain checker reports. The hand-written suite checks that
//! over 19 fixed configurations; this crate checks it over an unbounded, reproducible
//! stream:
//!
//! 1. [`spec`] draws a [`GenSpec`] — a pure-data recipe — from a `(seed, index)` pair
//!    of the shared `hat_testkit::XorShift` stream.
//! 2. [`GenSpec::build`] instantiates one of four invariant families (all mirroring
//!    templates the hand-written suite already verifies) into a library Δ, a ground
//!    representation invariant, and method bodies. A method is either an OK template
//!    (provably invariant-preserving) or carries one **verdict-flipping mutation**
//!    from the catalogue in [`Mutation`] — so its expected verdict is known without
//!    running any checker.
//! 3. [`fuzz::fuzz`] runs configurations end-to-end and, on any disagreement,
//!    [`shrink::shrink`] greedily minimises the *recipe* to a small reproducer whose
//!    name (e.g. `gen/s1-i17-m2-n0`) regenerates it anywhere — including server-side
//!    in `marpled`, which resolves generated names through [`find`].
//!
//! The committed 64-configuration corpus ([`corpus`]) is snapshotted in
//! `tests/gen_corpus_verdicts.txt` following the same golden discipline as the
//! engine's `golden_verdicts.txt`.

mod build;
mod spec;

pub mod fuzz;
pub mod shrink;

pub use build::well_sorted;
pub use spec::{parse_library_name, Edits, Family, GenSpec, MethodShape, MethodSpec, Mutation};

use hat_suite::Benchmark;

/// Seed of the committed corpus (`tests/gen_corpus_verdicts.txt`).
pub const CORPUS_SEED: u64 = 424242;

/// Size of the committed corpus.
pub const CORPUS_SIZE: u64 = 64;

/// Draws the recipe for configuration `index` of `seed`'s stream.
pub fn spec(seed: u64, index: u64) -> GenSpec {
    spec::draw(seed, index)
}

/// Builds configuration `index` of `seed`'s stream.
pub fn generate(seed: u64, index: u64) -> Benchmark {
    spec(seed, index).build()
}

/// The committed corpus: [`CORPUS_SIZE`] configurations of [`CORPUS_SEED`]'s stream.
pub fn corpus() -> Vec<Benchmark> {
    corpus_specs().iter().map(GenSpec::build).collect()
}

/// The recipes of the committed corpus.
pub fn corpus_specs() -> Vec<GenSpec> {
    (0..CORPUS_SIZE).map(|i| spec(CORPUS_SEED, i)).collect()
}

/// Resolves a generated configuration by name: ADT `gen`, library
/// `s<seed>-i<index>[-m<kept methods>][-n0]`. This is how `marple check gen s1-i17`
/// and the daemon's request resolution regenerate a configuration from its name
/// alone — the name *is* the recipe, so no wire-protocol change is needed to fuzz
/// over the daemon.
pub fn find(adt: &str, library: &str) -> Option<Benchmark> {
    if !adt.eq_ignore_ascii_case("gen") {
        return None;
    }
    let (seed, index, edits) = parse_library_name(library)?;
    let mut s = spec(seed, index);
    if let Some(keep) = &edits.keep {
        if keep.iter().any(|&i| i >= s.methods.len()) {
            return None;
        }
    }
    s.edits = edits;
    Some(s.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_configurations_are_well_sorted() {
        for i in 0..48 {
            let b = generate(3, i);
            well_sorted(&b).unwrap();
            assert!(!b.methods.is_empty());
            assert!(!b.delta.alphabet().is_empty());
            assert!(b.invariant.literal_count() > 0);
        }
    }

    #[test]
    fn find_round_trips_the_name() {
        let s = spec(9, 4);
        let b = find("gen", &s.library_name()).expect("name resolves");
        assert_eq!(b.library, s.library_name());
        assert_eq!(b.methods.len(), s.methods.len());
        assert!(find("Gen", &s.library_name()).is_some(), "case-insensitive");
        assert!(find("stack", &s.library_name()).is_none());
        assert!(
            find("gen", "s1-i2-m9").is_none(),
            "method index out of range"
        );
        assert!(find("gen", "bogus").is_none());
    }

    #[test]
    fn edits_drop_methods_and_noise() {
        // Find a spec with ≥2 methods and ≥1 noise call.
        let mut s = (0..256)
            .map(|i| spec(5, i))
            .find(|s| s.methods.len() >= 2 && s.methods.iter().any(|m| !m.noise_calls.is_empty()))
            .expect("stream contains a multi-method noisy spec");
        let full = s.build();
        s.edits.keep = Some(vec![0]);
        s.edits.strip_noise = true;
        let cut = s.build();
        assert_eq!(cut.methods.len(), 1);
        assert!(cut.methods.len() < full.methods.len());
        assert!(cut.library.ends_with("-m0-n0"));
        well_sorted(&cut).unwrap();
    }

    #[test]
    fn corpus_is_stable_and_diverse() {
        let specs = corpus_specs();
        assert_eq!(specs.len(), CORPUS_SIZE as usize);
        let families: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.family.tag()).collect();
        assert_eq!(
            families.len(),
            4,
            "corpus covers all families: {families:?}"
        );
        let ok = specs
            .iter()
            .flat_map(|s| &s.methods)
            .filter(|m| m.expect_verified())
            .count();
        let bad = specs.iter().flat_map(|s| &s.methods).count() - ok;
        assert!(
            ok > 20 && bad > 10,
            "corpus mixes verdicts: {ok} ok, {bad} bad"
        );
    }
}
