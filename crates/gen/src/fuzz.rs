//! The end-to-end fuzz driver.
//!
//! For every generated configuration the driver asserts the constructed verdicts
//! against every layer it can reach in-process:
//!
//! 1. **sorting** — the generator's well-sortedness promise (`⊢s`),
//! 2. **checker** — a plain [`hat_core::Checker`] with no engine around it,
//! 3. **engine** — one [`EngineConfig`] knob combination per configuration, rotating
//!    through the full `jobs × prune × inclusion × subsume × enumeration ×
//!    local-tiers` cross (96 combinations) so a long run exercises every cell while
//!    each configuration stays cheap; engines persist across configurations, so the
//!    shared memo tiers accumulate exactly as they would in a long-lived daemon,
//! 4. **warm** — an immediate resubmission of the same configuration to the same
//!    engine, answered from the memo tiers (optionally backed by an LSM disk store
//!    via [`FuzzConfig::cache_path`]).
//!
//! The daemon wire stage cannot live here (the daemon depends on this crate to
//! resolve generated names), so `marple fuzz --remote` adds it client-side by
//! re-checking a configuration's name over the socket and feeding the reports to
//! [`disagreements_in`].
//!
//! On the first disagreement the driver stops and hands the recipe to
//! [`crate::shrink::shrink`], re-running only the stages that disagreed; the shrunk
//! recipe's name is a standalone reproducer (`marple check gen <name>`).

use crate::shrink::shrink;
use crate::spec::GenSpec;
use crate::well_sorted;
use hat_core::MethodReport;
use hat_engine::{Engine, EngineConfig};
use hat_sfa::{EnumerationMode, InclusionMode, SubsumptionMode};
use hat_suite::Benchmark;
use std::fmt;
use std::path::PathBuf;

/// One observed-vs-constructed verdict mismatch.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which stage observed it (`sorting`, `checker`, `engine <knobs>`, `warm`,
    /// `remote`, …).
    pub stage: String,
    /// Method name.
    pub method: String,
    /// The constructed verdict.
    pub expected: bool,
    /// What the stage reported.
    pub got: bool,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} expected verified={} got {}",
            self.stage, self.method, self.expected, self.got
        )
    }
}

/// Compares a stage's reports against the constructed expectations.
pub fn disagreements_in(
    stage: &str,
    bench: &Benchmark,
    reports: &[MethodReport],
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    for (m, r) in bench.methods.iter().zip(reports) {
        if r.verified != m.expect_verified {
            out.push(Disagreement {
                stage: stage.to_string(),
                method: m.sig.name.clone(),
                expected: m.expect_verified,
                got: r.verified,
            });
        }
    }
    if reports.len() < bench.methods.len() {
        for m in &bench.methods[reports.len()..] {
            out.push(Disagreement {
                stage: format!("{stage} (missing report)"),
                method: m.sig.name.clone(),
                expected: m.expect_verified,
                got: !m.expect_verified,
            });
        }
    }
    out
}

/// Runs one configuration through a plain checker (no engine, no cache) and compares.
pub fn checker_disagreements(bench: &Benchmark) -> Vec<Disagreement> {
    if let Err(e) = well_sorted(bench) {
        // A sorting failure breaks the generator's core promise; surface it as a
        // disagreement on every method rather than panicking, so it shrinks too.
        return bench
            .methods
            .iter()
            .map(|m| Disagreement {
                stage: format!("sorting ({e})"),
                method: m.sig.name.clone(),
                expected: m.expect_verified,
                got: !m.expect_verified,
            })
            .collect();
    }
    let reports = bench.check_all();
    disagreements_in("checker", bench, &reports)
}

/// The full `jobs × prune × inclusion × subsume × enumeration × local-tiers` knob
/// cross (96 combinations). `cache_path` attaches the LSM disk store to the first
/// (all-defaults) combination only — the store's sidecar lock is single-writer per
/// path, so giving it to every combination would just make 95 engines degrade to
/// memory with a warning each.
pub fn full_matrix(cache_path: Option<&PathBuf>) -> Vec<(String, EngineConfig)> {
    let mut cache_path = cache_path.cloned();
    let mut out = Vec::new();
    for jobs in [1usize, 6] {
        for prune in [true, false] {
            for inclusion in [InclusionMode::OnTheFly, InclusionMode::Materialise] {
                for subsume in [
                    SubsumptionMode::Simulation,
                    SubsumptionMode::Syntactic,
                    SubsumptionMode::Off,
                ] {
                    for enumeration in [EnumerationMode::Incremental, EnumerationMode::Naive] {
                        for local_tiers in [true, false] {
                            let label = format!(
                                "jobs={jobs} prune={} inclusion={} subsume={} enum={} \
                                 local-tiers={}",
                                if prune { "on" } else { "off" },
                                match inclusion {
                                    InclusionMode::OnTheFly => "onthefly",
                                    InclusionMode::Materialise => "materialise",
                                },
                                subsume.as_str(),
                                match enumeration {
                                    EnumerationMode::Incremental => "incremental",
                                    EnumerationMode::Naive => "naive",
                                },
                                if local_tiers { "on" } else { "off" },
                            );
                            let cache_path = cache_path.take();
                            let label = if cache_path.is_some() {
                                format!("{label} lsm=on")
                            } else {
                                label
                            };
                            out.push((
                                label,
                                EngineConfig {
                                    jobs,
                                    cache_path,
                                    enumeration,
                                    prune,
                                    inclusion,
                                    subsume,
                                    local_tiers,
                                    memtable_bytes: None,
                                },
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The satellite-test core matrix: `jobs {1,6} × prune × inclusion` (8 combinations),
/// with default subsumption, enumeration and local tiers.
pub fn core_matrix(cache_path: Option<&PathBuf>) -> Vec<(String, EngineConfig)> {
    full_matrix(cache_path)
        .into_iter()
        .filter(|(l, _)| {
            l.contains("subsume=simulation")
                && l.contains("enum=incremental")
                && l.contains("local-tiers=on")
        })
        .map(|(l, c)| {
            (
                l.replace(" subsume=simulation enum=incremental local-tiers=on", ""),
                c,
            )
        })
        .collect()
}

/// Fuzz-run options.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Stream seed.
    pub seed: u64,
    /// Number of configurations (indices `0..count`).
    pub count: u64,
    /// Run every configuration under *every* knob combination instead of rotating
    /// one combination per configuration. Much slower; used by the corpus tests.
    pub exhaustive_knobs: bool,
    /// Optional LSM disk store path shared by the engines (exercises the persistent
    /// tier; the path's store accumulates across the run).
    pub cache_path: Option<PathBuf>,
    /// Progress callback cadence (configurations between `progress` calls).
    pub progress_every: u64,
}

impl FuzzConfig {
    /// A default run of `count` configurations from `seed`.
    pub fn new(seed: u64, count: u64) -> Self {
        FuzzConfig {
            seed,
            count,
            exhaustive_knobs: false,
            cache_path: None,
            progress_every: 100,
        }
    }
}

/// A failing configuration, shrunk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The originally drawn recipe.
    pub spec: GenSpec,
    /// The greedily minimised recipe (still failing).
    pub shrunk: GenSpec,
    /// The disagreements observed on the *original* configuration.
    pub disagreements: Vec<Disagreement>,
    /// The disagreements still observed on the shrunk configuration.
    pub shrunk_disagreements: Vec<Disagreement>,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Configurations checked (stops early on the first failure).
    pub checked: u64,
    /// Method verdicts asserted across all stages.
    pub verdicts: u64,
    /// The first failing configuration, if any, with its shrunk reproducer.
    pub failure: Option<FuzzFailure>,
}

impl FuzzOutcome {
    /// Whether every verdict across every stage matched its construction.
    pub fn clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs the fuzz loop. `log` receives human-readable progress lines.
pub fn fuzz(cfg: &FuzzConfig, log: &mut dyn FnMut(String)) -> FuzzOutcome {
    let matrix = full_matrix(cfg.cache_path.as_ref());
    // Engines are created lazily per knob combination and kept for the whole run, so
    // their memo tiers see many distinct configurations — the long-lived-daemon shape.
    let mut engines: Vec<Option<Engine>> = matrix.iter().map(|_| None).collect();
    let mut outcome = FuzzOutcome::default();

    for index in 0..cfg.count {
        let spec = crate::spec(cfg.seed, index);
        let combos: Vec<usize> = if cfg.exhaustive_knobs {
            (0..matrix.len()).collect()
        } else {
            vec![(index % matrix.len() as u64) as usize]
        };
        let disagreements =
            run_stages(&spec, &matrix, &mut engines, &combos, &mut outcome.verdicts);
        if !disagreements.is_empty() {
            log(format!(
                "config {index} disagreed ({}); shrinking…",
                disagreements
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
            let mut scratch = 0u64;
            let shrunk = shrink(&spec, |cand| {
                !run_stages(cand, &matrix, &mut engines, &combos, &mut scratch).is_empty()
            });
            let shrunk_disagreements =
                run_stages(&shrunk, &matrix, &mut engines, &combos, &mut scratch);
            outcome.failure = Some(FuzzFailure {
                spec,
                shrunk,
                disagreements,
                shrunk_disagreements,
            });
            outcome.checked = index + 1;
            return outcome;
        }
        outcome.checked = index + 1;
        if cfg.progress_every > 0 && (index + 1) % cfg.progress_every == 0 {
            log(format!(
                "{}/{} configurations clean ({} verdicts asserted)",
                index + 1,
                cfg.count,
                outcome.verdicts
            ));
        }
    }
    outcome
}

/// Runs one recipe through the in-process stages; returns all disagreements.
fn run_stages(
    spec: &GenSpec,
    matrix: &[(String, EngineConfig)],
    engines: &mut [Option<Engine>],
    combos: &[usize],
    verdicts: &mut u64,
) -> Vec<Disagreement> {
    let bench = spec.build();
    let mut out = checker_disagreements(&bench);
    *verdicts += bench.methods.len() as u64;
    for &ci in combos {
        let (label, config) = &matrix[ci];
        if engines[ci].is_none() {
            match Engine::new(config.clone()) {
                Ok(e) => engines[ci] = Some(e),
                Err(e) => {
                    out.push(Disagreement {
                        stage: format!("engine {label} (failed to start: {e})"),
                        method: "*".into(),
                        expected: true,
                        got: false,
                    });
                    continue;
                }
            }
        }
        let engine = engines[ci].as_ref().expect("engine created above");
        let benches = std::slice::from_ref(&bench);
        // Cold (for this configuration) …
        let summary = engine.check_benchmarks(benches);
        out.extend(disagreements_in(
            &format!("engine {label}"),
            &bench,
            &summary.benchmarks[0].reports,
        ));
        *verdicts += bench.methods.len() as u64;
        // … then warm: the same configuration answered from the memo tiers.
        let warm = engine.check_benchmarks(benches);
        out.extend(disagreements_in(
            &format!("warm {label}"),
            &bench,
            &warm.benchmarks[0].reports,
        ));
        *verdicts += bench.methods.len() as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_have_the_advertised_sizes() {
        assert_eq!(full_matrix(None).len(), 96);
        let modes: std::collections::HashSet<_> = full_matrix(None)
            .iter()
            .map(|(_, c)| c.subsume.as_str())
            .collect();
        assert_eq!(
            modes.len(),
            3,
            "all three subsumption modes are in the cross"
        );
        let core = core_matrix(None);
        assert_eq!(core.len(), 8);
        for (label, c) in &core {
            assert!(c.local_tiers, "{label}");
            assert_eq!(c.enumeration, EnumerationMode::Incremental, "{label}");
            assert_eq!(c.subsume, SubsumptionMode::Simulation, "{label}");
        }
    }

    #[test]
    fn a_small_run_is_clean() {
        let mut lines = Vec::new();
        let outcome = fuzz(&FuzzConfig::new(99, 6), &mut |l| lines.push(l));
        assert!(
            outcome.clean(),
            "failure: {:?}",
            outcome.failure.map(|f| f
                .disagreements
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>())
        );
        assert_eq!(outcome.checked, 6);
        assert!(outcome.verdicts > 0);
    }

    #[test]
    fn an_injected_expectation_flip_is_caught_and_shrunk() {
        // Deliberately lie about one method's expected verdict: the driver must
        // catch the disagreement and shrink it to a small reproducer (for a single
        // lie, a 1-method reproducer — well inside the ≤3-method acceptance bound).
        let spec = (0..64)
            .map(|i| crate::spec(31, i))
            .find(|s| s.methods.len() >= 2)
            .expect("stream contains a multi-method spec");
        let victim = spec.methods[1].name.clone();
        let lie = |cand: &GenSpec| {
            let mut bench = cand.build();
            for m in &mut bench.methods {
                if m.sig.name == victim {
                    m.expect_verified = !m.expect_verified;
                }
            }
            checker_disagreements(&bench)
                .iter()
                .any(|d| d.method == victim)
        };
        assert!(
            lie(&spec),
            "the lie is observable on the full configuration"
        );
        let shrunk = shrink(&spec, lie);
        assert!(
            shrunk.live_methods().len() <= 3,
            "reproducer has {} methods",
            shrunk.live_methods().len()
        );
        let b = shrunk.build();
        assert!(b.methods.iter().any(|m| m.sig.name == victim));
    }
}
