//! Building a [`GenSpec`] into a `hat_suite::Benchmark` with known-by-construction
//! verdicts.
//!
//! The built library specification, invariant, and method bodies instantiate the
//! verified templates of the hand-written suite (guarded insert, no-self-loop guard,
//! MinSet link, DFA disconnect-before-reconnect) with the spec's drawn names, sorts,
//! arities and noise operators. A method with no mutation is expected to verify; a
//! mutated method is expected to fail. `docs/FUZZING.md` carries the violating-trace
//! argument for every mutation.

use crate::spec::{Family, GenSpec, MethodShape, MethodSpec, Mutation};
use hat_core::delta::events::appends;
use hat_core::{Delta, EffOpSig, HoareCase, MethodSig, RType, NU};
use hat_lang::builder::{ite, let_eff, let_pure, ret};
use hat_lang::interp::LibraryModel;
use hat_lang::{Expr, Value};
use hat_logic::axioms::Axiom;
use hat_logic::{Constant, Formula, Sort, Term};
use hat_sfa::Sfa;
use hat_suite::stacks::at_most_once;
use hat_suite::{Benchmark, Method};

/// `⟨op a0 … a{n-1} = ν | φ⟩` with the generator's canonical event-argument names.
fn gev(op: &str, arity: usize, phi: Formula) -> Sfa {
    let args: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
    Sfa::event(op, args, NU, phi)
}

/// `a0 = t` over the canonical event arguments.
fn arg0_eq(t: Term) -> Formula {
    Formula::eq(Term::var("a0"), t)
}

/// `⋀ᵢ aᵢ = xᵢ` — the full-precision append formula binding every event argument to
/// the operator's parameter.
fn all_args_eq(arity: usize) -> Formula {
    Formula::and(
        (0..arity)
            .map(|i| Formula::eq(Term::var(format!("a{i}")), Term::var(format!("x{i}"))))
            .collect(),
    )
}

impl GenSpec {
    /// The library specification Δ drawn by this spec.
    pub fn delta(&self) -> Delta {
        let mut d = Delta::new();
        let key = RType::base(self.key_sort.clone());
        let op_params = |arity: usize| -> Vec<(String, RType)> {
            (0..arity).map(|i| (format!("x{i}"), key.clone())).collect()
        };
        let append_sig = |name: &str, arity: usize| EffOpSig {
            ghosts: vec![],
            params: op_params(arity),
            cases: vec![HoareCase {
                pre: Sfa::universe(),
                ty: RType::base(Sort::Unit),
                post: appends(&Sfa::universe(), gev(name, arity, all_args_eq(arity))),
            }],
        };

        d.declare_eff(
            self.main_op.clone(),
            append_sig(&self.main_op, self.main_arity),
        );
        match self.family {
            Family::Uniqueness => {
                // The membership probe: an intersection type keyed on whether the main
                // operator has already recorded this key (the Set `mem` template).
                let present = Sfa::eventually(gev(
                    &self.main_op,
                    self.main_arity,
                    arg0_eq(Term::var("x0")),
                ));
                let absent = Sfa::not(present.clone());
                let probe_ev = |r: bool| {
                    gev(
                        &self.aux_op,
                        1,
                        Formula::and(vec![
                            Formula::eq(Term::var("a0"), Term::var("x0")),
                            Formula::eq(Term::var(NU), Term::bool(r)),
                        ]),
                    )
                };
                d.declare_eff(
                    self.aux_op.clone(),
                    EffOpSig {
                        ghosts: vec![],
                        params: vec![("x0".into(), key.clone())],
                        cases: vec![
                            HoareCase {
                                pre: present.clone(),
                                ty: RType::bool_singleton(true),
                                post: appends(&present, probe_ev(true)),
                            },
                            HoareCase {
                                pre: absent.clone(),
                                ty: RType::bool_singleton(false),
                                post: appends(&absent, probe_ev(false)),
                            },
                        ],
                    },
                );
            }
            Family::ForbiddenPair => {}
            Family::Link => {
                d.declare_eff(self.aux_op.clone(), append_sig(&self.aux_op, 1));
            }
            Family::Alternation => {
                d.declare_eff(self.aux_op.clone(), append_sig(&self.aux_op, 2));
            }
        }
        for (name, arity) in &self.noise_ops {
            d.declare_eff(name.clone(), append_sig(name, *arity));
        }
        if self.with_axioms {
            // A semantically inert (tautological) method predicate: it cannot change
            // any verdict, but it does change the axiom fingerprint, so engine cache
            // keys must keep these configurations apart from their axiom-free twins.
            let marked = Formula::pred("marked", vec![Term::var("x")]);
            d.axioms.declare_pred("marked", vec![self.key_sort.clone()]);
            d.axioms.add_axiom(Axiom::new(
                "marked-total",
                vec![("x".into(), self.key_sort.clone())],
                Formula::or(vec![marked.clone(), Formula::not(marked)]),
            ));
        }
        d
    }

    /// The representation invariant over the ghost variable.
    pub fn invariant(&self) -> Sfa {
        let g = Term::var(self.ghost.clone());
        match self.family {
            Family::Uniqueness => at_most_once(gev(&self.main_op, self.main_arity, arg0_eq(g))),
            Family::ForbiddenPair => Sfa::globally(Sfa::not(gev(
                &self.main_op,
                self.main_arity,
                Formula::and(vec![
                    Formula::eq(Term::var("a0"), g.clone()),
                    Formula::eq(Term::var("a1"), g),
                ]),
            ))),
            Family::Link => Sfa::implies(
                Sfa::eventually(gev(&self.main_op, 1, arg0_eq(g.clone()))),
                Sfa::eventually(gev(&self.aux_op, 1, arg0_eq(g))),
            ),
            Family::Alternation => {
                let conn_g = || gev(&self.main_op, 2, arg0_eq(g.clone()));
                let disc_g = gev(&self.aux_op, 2, arg0_eq(g.clone()));
                Sfa::globally(Sfa::not(Sfa::and(vec![
                    conn_g(),
                    Sfa::next(Sfa::until(Sfa::not(disc_g), conn_g())),
                ])))
            }
        }
    }

    /// The invariant used by one method's signature: the spec invariant, except under
    /// the `WidenQualifier` mutation, which widens the event qualifier to `⊤`.
    fn method_invariant(&self, m: &MethodSpec) -> Sfa {
        if m.mutation == Some(Mutation::WidenQualifier) {
            at_most_once(gev(&self.main_op, self.main_arity, Formula::True))
        } else {
            self.invariant()
        }
    }

    /// Executable semantics for the interpreter-based harnesses: append-only events,
    /// with the probe replaying the membership observation off the trace.
    pub fn model(&self) -> LibraryModel {
        let mut m = LibraryModel::new();
        let unit_ops: Vec<String> = std::iter::once(self.main_op.clone())
            .chain(self.noise_ops.iter().map(|(n, _)| n.clone()))
            .chain(
                (!matches!(self.family, Family::Uniqueness | Family::ForbiddenPair))
                    .then(|| self.aux_op.clone()),
            )
            .collect();
        for op in unit_ops {
            m.define(op, |_trace, _args| Ok(Constant::Unit));
        }
        if matches!(self.family, Family::Uniqueness) {
            let main = self.main_op.clone();
            m.define(self.aux_op.clone(), move |trace, args| {
                Ok(Constant::Bool(
                    trace.any(|e| e.op == main && e.args.first() == args.first()),
                ))
            });
        }
        m
    }

    /// Builds the benchmark configuration, honouring the spec's edits.
    pub fn build(&self) -> Benchmark {
        let ghosts = vec![(self.ghost.clone(), self.key_sort.clone())];
        let inv = self.invariant();
        let methods: Vec<Method> = self
            .live_methods()
            .into_iter()
            .map(|i| self.build_method(&self.methods[i], &ghosts))
            .collect();
        Benchmark {
            adt: self.adt().to_string(),
            library: self.library_name(),
            invariant_description: format!("Generated {} invariant", self.family.tag()),
            policy: format!(
                "seed {} index {}: {} methods over {}",
                self.seed,
                self.index,
                methods.len(),
                self.main_op
            ),
            ghosts,
            invariant: inv,
            delta: self.delta(),
            model: self.model(),
            methods,
            slow: false,
        }
    }

    fn build_method(&self, m: &MethodSpec, ghosts: &[(String, Sort)]) -> Method {
        let key = RType::base(self.key_sort.clone());
        let mut params: Vec<(String, RType)> = m
            .key_params
            .iter()
            .map(|p| (p.clone(), key.clone()))
            .collect();
        if let Some(extra) = &m.extra_param {
            params.push((extra.clone(), key.clone()));
        }
        let ret_ty = if m.shape == MethodShape::Probe {
            RType::base(Sort::Bool)
        } else {
            RType::base(Sort::Unit)
        };
        let inv = self.method_invariant(m);
        let sig = MethodSig {
            name: m.name.clone(),
            ghosts: ghosts.to_vec(),
            params,
            pre: inv.clone(),
            ret: ret_ty,
            post: inv,
        };
        let mut body = self.core_body(m);
        if !self.edits.strip_noise {
            // Noise calls are a prefix so stripping them never changes which guard
            // observes which trace.
            for (j, &ni) in m.noise_calls.iter().enumerate().rev() {
                let (name, arity) = &self.noise_ops[ni];
                let args: Vec<Value> = (0..*arity)
                    .map(|k| Value::var(m.key_params[k % m.key_params.len()].clone()))
                    .collect();
                body = let_eff(format!("w{j}"), name.clone(), args, body);
            }
        }
        Method {
            sig,
            body,
            expect_verified: m.expect_verified(),
        }
    }

    /// The body template for a shape/mutation pair (without the noise prefix).
    fn core_body(&self, m: &MethodSpec) -> Expr {
        use MethodShape::*;
        let k = |i: usize| Value::var(m.key_params[i].clone());
        // Arguments of a main-operator call writing key `ki`.
        let main_args = |ki: usize| -> Vec<Value> {
            let mut v = vec![k(ki)];
            if let Some(extra) = &m.extra_param {
                v.push(Value::var(extra.clone()));
            }
            v
        };
        let guarded_add = |probe_key: usize, add_key: usize, binder: &str, ub: &str| {
            let_eff(
                binder,
                self.aux_op.clone(),
                vec![k(probe_key)],
                ite(
                    Value::var(binder),
                    ret(Value::unit()),
                    let_eff(
                        ub,
                        self.main_op.clone(),
                        main_args(add_key),
                        ret(Value::unit()),
                    ),
                ),
            )
        };
        match (self.family, m.shape, m.mutation) {
            (_, Ret, _) => ret(Value::unit()),

            // ---- Uniqueness -------------------------------------------------------
            (Family::Uniqueness, Probe, _) => let_eff(
                m.guard_binder.clone(),
                self.aux_op.clone(),
                vec![k(0)],
                ret(Value::var(m.guard_binder.clone())),
            ),
            (Family::Uniqueness, shape, mutation) => {
                self.uniqueness_body(m, shape, mutation, &k, &main_args, &guarded_add)
            }

            // ---- ForbiddenPair ----------------------------------------------------
            (Family::ForbiddenPair, PairGuardedAdd, mutation) => {
                let pair_args = |a: usize, b: usize| -> Vec<Value> {
                    let mut v = vec![k(a), k(b)];
                    if let Some(extra) = &m.extra_param {
                        v.push(Value::var(extra.clone()));
                    }
                    v
                };
                let call = |a: usize, b: usize| {
                    let_eff(
                        "u0",
                        self.main_op.clone(),
                        pair_args(a, b),
                        ret(Value::unit()),
                    )
                };
                match mutation {
                    Some(Mutation::DropGuard) => call(0, 1),
                    Some(Mutation::AliasArg) => call(0, 0),
                    Some(Mutation::NegateGuard) => let_pure(
                        m.guard_binder.clone(),
                        "==",
                        vec![k(0), k(1)],
                        ite(
                            Value::var(m.guard_binder.clone()),
                            call(0, 1),
                            ret(Value::unit()),
                        ),
                    ),
                    _ => let_pure(
                        m.guard_binder.clone(),
                        "==",
                        vec![k(0), k(1)],
                        ite(
                            Value::var(m.guard_binder.clone()),
                            ret(Value::unit()),
                            call(0, 1),
                        ),
                    ),
                }
            }

            // ---- Link -------------------------------------------------------------
            (Family::Link, shape, mutation) => {
                let link =
                    |ki: usize, rest: Expr| let_eff("u0", self.aux_op.clone(), vec![k(ki)], rest);
                let use_ =
                    |ki: usize, rest: Expr| let_eff("u1", self.main_op.clone(), vec![k(ki)], rest);
                match (shape, mutation) {
                    (_, Some(Mutation::SkipLink)) => use_(0, ret(Value::unit())),
                    (_, Some(Mutation::WrongKeyLink)) => link(0, use_(1, ret(Value::unit()))),
                    (LinkOnly, _) => link(0, ret(Value::unit())),
                    (LinkThenUse, _) => link(0, use_(0, ret(Value::unit()))),
                    (UseThenLink, _) => use_(0, link(0, ret(Value::unit()))),
                    _ => unreachable!("shape {shape:?} is not a Link shape"),
                }
            }

            // ---- Alternation ------------------------------------------------------
            (Family::Alternation, shape, mutation) => {
                let disc = |a: usize, b: usize, rest: Expr| {
                    let_eff("u0", self.aux_op.clone(), vec![k(a), k(b)], rest)
                };
                let conn = |ub: &str, a: usize, b: usize, rest: Expr| {
                    let_eff(ub, self.main_op.clone(), vec![k(a), k(b)], rest)
                };
                match (shape, mutation) {
                    (ClearOnly, _) => disc(0, 1, ret(Value::unit())),
                    (SwapThenAdd, None) => disc(0, 1, conn("u1", 0, 2, ret(Value::unit()))),
                    (SwapThenAdd, Some(Mutation::PermutePair)) => {
                        conn("u1", 0, 2, disc(0, 1, ret(Value::unit())))
                    }
                    (SwapThenAdd, Some(Mutation::DoubleConnect)) => {
                        conn("u1", 0, 2, conn("u2", 0, 1, ret(Value::unit())))
                    }
                    (SwapThenAdd, Some(Mutation::DropGuard)) => {
                        conn("u1", 0, 2, ret(Value::unit()))
                    }
                    _ => unreachable!(
                        "shape {shape:?}/{mutation:?} is not an Alternation combination"
                    ),
                }
            }

            (family, shape, mutation) => {
                unreachable!("unhandled combination {family:?}/{shape:?}/{mutation:?}")
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn uniqueness_body(
        &self,
        m: &MethodSpec,
        shape: MethodShape,
        mutation: Option<Mutation>,
        k: &dyn Fn(usize) -> Value,
        main_args: &dyn Fn(usize) -> Vec<Value>,
        guarded_add: &dyn Fn(usize, usize, &str, &str) -> Expr,
    ) -> Expr {
        use MethodShape::*;
        let bare_add = || let_eff("u0", self.main_op.clone(), main_args(0), ret(Value::unit()));
        match (shape, mutation) {
            (GuardedAdd, None) | (GuardedAdd, Some(Mutation::WidenQualifier)) => {
                guarded_add(0, 0, &m.guard_binder, "u0")
            }
            (GuardedAdd, Some(Mutation::DropGuard)) => bare_add(),
            (GuardedAdd, Some(Mutation::NegateGuard)) => let_eff(
                m.guard_binder.clone(),
                self.aux_op.clone(),
                vec![k(0)],
                ite(
                    Value::var(m.guard_binder.clone()),
                    let_eff("u0", self.main_op.clone(), main_args(0), ret(Value::unit())),
                    ret(Value::unit()),
                ),
            ),
            (GuardedAdd, Some(Mutation::WrongKey)) => guarded_add(0, 1, &m.guard_binder, "u0"),
            (GuardedAdd, Some(Mutation::DoubleAdd)) => let_eff(
                m.guard_binder.clone(),
                self.aux_op.clone(),
                vec![k(0)],
                ite(
                    Value::var(m.guard_binder.clone()),
                    ret(Value::unit()),
                    let_eff(
                        "u0",
                        self.main_op.clone(),
                        main_args(0),
                        let_eff("u1", self.main_op.clone(), main_args(0), ret(Value::unit())),
                    ),
                ),
            ),
            (PureGuardedAdd, muta) => {
                let add_branch =
                    let_eff("u0", self.main_op.clone(), main_args(0), ret(Value::unit()));
                match muta {
                    Some(Mutation::DropGuard) => bare_add(),
                    Some(Mutation::NegateGuard) => let_pure(
                        m.guard_binder.clone(),
                        "==",
                        vec![k(0), Value::var(self.ghost.clone())],
                        ite(
                            Value::var(m.guard_binder.clone()),
                            add_branch,
                            ret(Value::unit()),
                        ),
                    ),
                    // None and WidenQualifier share the straight guarded body.
                    _ => let_pure(
                        m.guard_binder.clone(),
                        "==",
                        vec![k(0), Value::var(self.ghost.clone())],
                        ite(
                            Value::var(m.guard_binder.clone()),
                            ret(Value::unit()),
                            add_branch,
                        ),
                    ),
                }
            }
            (DoubleGuardedAdd, muta) => {
                let second = guarded_add(1, 1, "b1", "u1");
                match muta {
                    Some(Mutation::DropGuard) => {
                        let_eff("u0", self.main_op.clone(), main_args(0), second)
                    }
                    // None and WidenQualifier share the straight double-guarded body.
                    _ => let_eff(
                        m.guard_binder.clone(),
                        self.aux_op.clone(),
                        vec![k(0)],
                        ite(
                            Value::var(m.guard_binder.clone()),
                            second.clone(),
                            let_eff("u0", self.main_op.clone(), main_args(0), second),
                        ),
                    ),
                }
            }
            (shape, muta) => unreachable!("unhandled Uniqueness combination {shape:?}/{muta:?}"),
        }
    }
}

/// Checks that every method body of a built configuration is basically well-typed with
/// respect to its library specification (the `⊢s` pre-check the paper's checker
/// assumes). The generator promises this holds for every spec; the fuzz driver
/// asserts it for every configuration it runs.
pub fn well_sorted(b: &Benchmark) -> Result<(), String> {
    let basic = b.delta.basic_ctx();
    for m in &b.methods {
        let mut ctx = basic.clone();
        for (g, s) in &m.sig.ghosts {
            ctx.bind(g.clone(), hat_lang::BasicType::Base(s.clone()));
        }
        for (p, t) in &m.sig.params {
            ctx.bind(p.clone(), t.erase());
        }
        ctx.check_expr(&m.body).map_err(|e| {
            format!(
                "{}/{}::{} is not basically typed: {e}",
                b.adt, b.library, m.sig.name
            )
        })?;
    }
    Ok(())
}
