//! Greedy recipe-level shrinking.
//!
//! The shrinker never edits syntax trees: it edits the [`GenSpec`] *recipe* (drop a
//! method, strip the noise calls) and rebuilds, so every candidate is still a
//! well-sorted configuration with known verdicts, and the final reproducer still has
//! a regenerable name (`s<seed>-i<index>-m…-n0`). Greedy method-dropping converges to
//! the set of methods that actually disagree — for a single bad method, a one-method
//! reproducer — which is what bounds CI reproducers to a handful of methods.

use crate::spec::GenSpec;

/// Greedily minimises `spec` while `still_failing` keeps returning `true` (the
/// predicate receives a candidate recipe and must rebuild/re-run whatever stage
/// disagreed). Returns the smallest failing recipe found.
///
/// The caller guarantees `still_failing(spec)` holds on entry; the shrinker only ever
/// commits edits that keep it holding, so the result is always a failing reproducer.
pub fn shrink<F>(spec: &GenSpec, mut still_failing: F) -> GenSpec
where
    F: FnMut(&GenSpec) -> bool,
{
    let mut cur = spec.clone();
    loop {
        let mut progressed = false;

        // Drop one method at a time (re-scanning after every success, so the loop is
        // quadratic in the worst case — trivially fine for ≤4 methods).
        let live = cur.live_methods();
        if live.len() > 1 {
            for &victim in &live {
                let mut cand = cur.clone();
                cand.edits.keep = Some(live.iter().copied().filter(|&j| j != victim).collect());
                if still_failing(&cand) {
                    cur = cand;
                    progressed = true;
                    break;
                }
            }
        }

        // Strip the noise-operator calls once method-dropping is exhausted.
        if !progressed && !cur.edits.strip_noise {
            let mut cand = cur.clone();
            cand.edits.strip_noise = true;
            if still_failing(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_guilty_method() {
        // Pick a corpus spec with several methods; declare method 2 "guilty".
        let spec = (0..256)
            .map(|i| crate::spec(17, i))
            .find(|s| s.methods.len() >= 3)
            .expect("stream contains a 3-method spec");
        let guilty = spec.methods[2].name.clone();
        let mut evals = 0;
        let min = shrink(&spec, |cand| {
            evals += 1;
            cand.live_methods()
                .iter()
                .any(|&i| cand.methods[i].name == guilty)
        });
        assert_eq!(min.live_methods().len(), 1);
        assert_eq!(min.methods[min.live_methods()[0]].name, guilty);
        assert!(min.edits.strip_noise);
        assert!(evals < 40, "greedy shrink stays small: {evals} evals");
        // The shrunk recipe still builds and still carries a regenerable name.
        let b = min.build();
        assert_eq!(b.methods.len(), 1);
        assert!(crate::find("gen", &min.library_name()).is_some());
    }

    #[test]
    fn refuses_to_lose_the_failure() {
        let spec = crate::spec(17, 0);
        // A predicate that only fails on the *unshrunk* spec: nothing can be dropped.
        let original = spec.library_name();
        let min = shrink(&spec, |cand| cand.library_name() == original);
        assert_eq!(min.library_name(), original);
    }
}
