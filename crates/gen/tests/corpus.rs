//! The committed 64-configuration corpus, pinned two ways:
//!
//! * **Golden snapshot** (`tests/gen_corpus_verdicts.txt`): one line per corpus
//!   (configuration, method) pair with its recipe tag, constructed verdict, and the
//!   plain checker's verdict — the same golden discipline as the engine's
//!   `golden_verdicts.txt`. A generator drift (different draw for the same seed) or a
//!   checker drift (different verdict for the same configuration) both show up as a
//!   snapshot diff; regenerate intentionally with
//!   `UPDATE_GOLDEN=1 cargo test -p hat-gen --test corpus`.
//! * **Knob-matrix differential**: the corpus re-verified under the core engine knob
//!   cross (`jobs {1,6} × prune × inclusion`) and under an LSM-backed store cold and
//!   warm — every verdict must equal the constructed one (and therefore every other
//!   combination's) bit for bit.

use hat_engine::{Engine, EngineConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::OnceLock;

fn corpus() -> &'static [hat_suite::Benchmark] {
    static CORPUS: OnceLock<Vec<hat_suite::Benchmark>> = OnceLock::new();
    CORPUS.get_or_init(hat_gen::corpus)
}

fn render_snapshot() -> String {
    let specs = hat_gen::corpus_specs();
    let mut out = String::new();
    out.push_str(
        "# Generated-corpus verdict snapshot — one line per (configuration, method) pair.\n",
    );
    out.push_str("# Format: gen/<library>::<method> <shape[+mutation]> expected=<bool> verdict=<bool> [DIVERGENT]\n");
    out.push_str(&format!(
        "# Corpus: seed {} indices 0..{}; regenerate with UPDATE_GOLDEN=1 cargo test -p hat-gen --test corpus\n",
        hat_gen::CORPUS_SEED,
        hat_gen::CORPUS_SIZE
    ));
    for (spec, bench) in specs.iter().zip(corpus()) {
        let reports = bench.check_all();
        for ((ms, m), r) in spec.methods.iter().zip(&bench.methods).zip(&reports) {
            let divergent = if r.verified == m.expect_verified {
                ""
            } else {
                " DIVERGENT"
            };
            writeln!(
                out,
                "gen/{}::{} {} expected={} verdict={}{}",
                bench.library,
                m.sig.name,
                ms.tag(),
                m.expect_verified,
                r.verified,
                divergent
            )
            .expect("writing to a String cannot fail");
        }
    }
    out
}

/// Every constructed verdict must match the plain checker — a `DIVERGENT` marker is a
/// generator or checker bug, never an acceptable snapshot state (this fires under
/// `UPDATE_GOLDEN=1` too, so a regeneration cannot pin one).
#[test]
fn corpus_verdicts_match_the_golden_snapshot() {
    let rendered = render_snapshot();
    let divergent: Vec<&str> = rendered
        .lines()
        .filter(|l| l.ends_with("DIVERGENT"))
        .collect();
    assert!(
        divergent.is_empty(),
        "constructed verdicts diverge from the checker:\n{}",
        divergent.join("\n")
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/gen_corpus_verdicts.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, rendered).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; regenerate with UPDATE_GOLDEN=1 cargo test -p hat-gen --test corpus",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "generated corpus verdicts changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p hat-gen --test corpus"
    );
}

/// Collects `(library, method, verified)` triples of a batch run, asserting them
/// against the constructed verdicts as it goes.
fn verdict_vector(label: &str, engine: &Engine, benches: &[hat_suite::Benchmark]) -> Vec<bool> {
    let summary = engine.check_benchmarks(benches);
    let mut out = Vec::new();
    for (bench, run) in benches.iter().zip(&summary.benchmarks) {
        assert_eq!(
            run.reports.len(),
            bench.methods.len(),
            "[{label}] gen/{}: partial report",
            bench.library
        );
        for (m, r) in bench.methods.iter().zip(&run.reports) {
            assert_eq!(
                r.verified, m.expect_verified,
                "[{label}] gen/{}::{} disagrees with construction",
                bench.library, m.sig.name
            );
            out.push(r.verified);
        }
    }
    out
}

/// The corpus under the core knob cross — every combination's verdict vector is
/// bit-identical to the constructed one (and therefore to every other combination's).
///
/// Budgeted for debug-build CI: the *full* corpus runs under the two most adversarial
/// contrast points of the cross (sequential default vs 6 workers with every
/// non-default knob), and a 20-configuration slice runs under all 8 core
/// combinations. `marple fuzz --exhaustive` covers the full cross on demand.
#[test]
fn corpus_verdicts_are_knob_invariant() {
    let benches = corpus();
    let contrast = [
        ("jobs=1 defaults", EngineConfig::default()),
        (
            "jobs=6 prune=off inclusion=materialise",
            EngineConfig {
                jobs: 6,
                prune: false,
                inclusion: hat_sfa::InclusionMode::Materialise,
                ..EngineConfig::default()
            },
        ),
    ];
    let mut vectors = Vec::new();
    for (label, config) in contrast {
        let engine = Engine::new(config).expect("in-memory engine");
        vectors.push((label.to_string(), verdict_vector(label, &engine, benches)));
    }
    let (first_label, first) = &vectors[0];
    for (label, v) in &vectors[1..] {
        assert_eq!(
            v, first,
            "verdicts differ between `{first_label}` and `{label}`"
        );
    }

    let slice = &benches[..20];
    let mut slice_vectors = Vec::new();
    for (label, config) in hat_gen::fuzz::core_matrix(None) {
        let engine = Engine::new(config).expect("in-memory engine");
        slice_vectors.push((label.clone(), verdict_vector(&label, &engine, slice)));
    }
    let (first_label, first) = &slice_vectors[0];
    for (label, v) in &slice_vectors[1..] {
        assert_eq!(
            v, first,
            "verdicts differ between `{first_label}` and `{label}`"
        );
    }
}

/// A corpus slice against an LSM-backed store, cold then warm: the second engine
/// starts from the first one's segments and must reproduce the verdicts exactly.
#[test]
fn corpus_verdicts_survive_the_disk_cache() {
    let dir = std::env::temp_dir().join(format!("hat-gen-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cache = dir.join("corpus.cache");
    let slice = &corpus()[..16];
    let config = |jobs: usize| EngineConfig {
        jobs,
        cache_path: Some(cache.clone()),
        ..EngineConfig::default()
    };
    let cold = {
        let engine = Engine::new(config(2)).expect("cold engine");
        verdict_vector("lsm-cold", &engine, slice)
    };
    // Engine dropped: the store's segments are on disk. A fresh engine warms from them.
    let warm = {
        let engine = Engine::new(config(1)).expect("warm engine");
        verdict_vector("lsm-warm", &engine, slice)
    };
    assert_eq!(cold, warm, "cold and warm verdict vectors differ");
    std::fs::remove_dir_all(&dir).ok();
}
