//! The empirical gate on the generator's core promise: for EVERY
//! family × shape × mutation combination the catalogue admits — across both key
//! sorts, both main-operator arities, and with/without noise prefixes — the plain
//! checker must report exactly the constructed verdict.
//!
//! The randomised stream only ever instantiates combinations this test enumerates
//! exhaustively, so a green run here plus determinism of `draw` means the stream's
//! verdicts are trustworthy; the fuzz driver then checks that the *rest of the
//! stack* (engine knobs, memo tiers, cache, wire) agrees with the checker.

use hat_gen::{well_sorted, Edits, Family, GenSpec, MethodShape, MethodSpec, Mutation};
use hat_logic::Sort;

/// Shapes each family's draw pool can produce (mirrors `spec::draw`).
fn shapes(family: Family) -> &'static [MethodShape] {
    use MethodShape::*;
    match family {
        Family::Uniqueness => &[Ret, Probe, GuardedAdd, PureGuardedAdd, DoubleGuardedAdd],
        Family::ForbiddenPair => &[Ret, PairGuardedAdd],
        Family::Link => &[Ret, LinkOnly, LinkThenUse, UseThenLink],
        Family::Alternation => &[Ret, ClearOnly, SwapThenAdd],
    }
}

/// Arities `spec::draw` can assign to the family's main operator.
fn arities(family: Family) -> &'static [usize] {
    match family {
        Family::Uniqueness => &[1, 2],
        Family::ForbiddenPair => &[2, 3],
        Family::Link => &[1],
        Family::Alternation => &[2],
    }
}

fn aux_op(family: Family) -> &'static str {
    match family {
        Family::Uniqueness => "mem",
        Family::ForbiddenPair => "",
        Family::Link => "register",
        Family::Alternation => "disconnect",
    }
}

/// Key-parameter count for a shape/mutation (mirrors `spec::key_param_count`).
fn key_param_count(family: Family, shape: MethodShape, mutation: Option<Mutation>) -> usize {
    use MethodShape::*;
    let base = match (family, shape) {
        (Family::ForbiddenPair, _) => 2,
        (Family::Alternation, SwapThenAdd) => 3,
        (Family::Alternation, _) => 2,
        (_, DoubleGuardedAdd) => 2,
        _ => 1,
    };
    base + usize::from(matches!(
        mutation,
        Some(Mutation::WrongKey) | Some(Mutation::WrongKeyLink)
    ))
}

fn entry(
    family: Family,
    shape: MethodShape,
    mutation: Option<Mutation>,
    key_sort: Sort,
    main_arity: usize,
    noisy: bool,
) -> GenSpec {
    let n_keys = key_param_count(family, shape, mutation);
    let key_params = ["x", "k", "key"][..n_keys]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let extra_param = match family {
        Family::Uniqueness if main_arity == 2 => Some("val_arg".to_string()),
        Family::ForbiddenPair if main_arity == 3 => Some("lbl_arg".to_string()),
        _ => None,
    };
    let noise_ops = if noisy {
        vec![("log".to_string(), 1), ("touch".to_string(), 2)]
    } else {
        Vec::new()
    };
    let noise_calls = (0..noise_ops.len()).collect();
    GenSpec {
        seed: 0,
        index: 0,
        family,
        key_sort,
        with_axioms: noisy, // piggyback: exercise the axiom-set path on half the entries
        main_op: "insert".to_string(),
        main_arity,
        aux_op: aux_op(family).to_string(),
        noise_ops,
        ghost: "g".to_string(),
        methods: vec![MethodSpec {
            shape,
            mutation,
            name: "entry_m0".to_string(),
            key_params,
            extra_param,
            guard_binder: "b".to_string(),
            noise_calls,
        }],
        edits: Edits::default(),
    }
}

#[test]
fn every_catalogue_entry_matches_the_checker() {
    let families = [
        Family::Uniqueness,
        Family::ForbiddenPair,
        Family::Link,
        Family::Alternation,
    ];
    let sorts = [Sort::Int, Sort::named("Elem.t")];
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for family in families {
        for &shape in shapes(family) {
            let mut mutations: Vec<Option<Mutation>> = vec![None];
            mutations.extend(Mutation::applicable(family, shape).iter().map(|&m| Some(m)));
            for mutation in mutations {
                for sort in &sorts {
                    for &arity in arities(family) {
                        for noisy in [false, true] {
                            let spec = entry(family, shape, mutation, sort.clone(), arity, noisy);
                            let bench = spec.build();
                            if let Err(e) = well_sorted(&bench) {
                                failures.push(format!(
                                    "{}/{:?}/{:?} sort={sort} arity={arity} noisy={noisy}: ill-sorted: {e}",
                                    family.tag(),
                                    shape,
                                    mutation,
                                ));
                                continue;
                            }
                            let reports = bench.check_all();
                            let m = &bench.methods[0];
                            if reports[0].verified != m.expect_verified {
                                failures.push(format!(
                                    "{}/{:?}/{:?} sort={sort} arity={arity} noisy={noisy}: expected verified={} got {} ({:?})",
                                    family.tag(),
                                    shape,
                                    mutation,
                                    m.expect_verified,
                                    reports[0].verified,
                                    reports[0].failures,
                                ));
                            }
                            checked += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} catalogue entries disagreed with the checker:\n{}",
        failures.len(),
        checked + failures.len(),
        failures.join("\n")
    );
    // The catalogue is non-trivial: all four families, OK and FAIL entries.
    assert!(checked > 100, "only {checked} entries enumerated");
}
