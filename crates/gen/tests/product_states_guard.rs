//! Regression guard for antichain subsumption on the committed corpus: the total
//! number of product pairs the default (`--subsume simulation`) walk enqueues across
//! all 64 configurations must never exceed the recorded baseline
//! (`tests/corpus_product_states.txt`). The differential harness proves pruning is
//! sound and monotone against `--subsume off` *within one build*; this guard pins the
//! absolute number across builds, so a refactor that silently stops the pruning from
//! firing (verdicts stay right, the walk just grows back) fails CI instead of
//! vanishing into a wall-clock regression.
//!
//! If a change legitimately shrinks the walk further, re-record with
//! `UPDATE_BASELINE=1 cargo test -p hat-gen --test product_states_guard`.

#[test]
fn corpus_product_states_do_not_exceed_the_recorded_baseline() {
    let baseline_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus_product_states.txt"
    );
    let recorded: usize = std::fs::read_to_string(baseline_path)
        .expect("committed baseline file")
        .trim()
        .parse()
        .expect("the baseline file holds one integer");
    let mut total = 0usize;
    for bench in hat_gen::corpus() {
        let mut checker = hat_core::Checker::new(bench.delta.clone());
        assert_eq!(
            checker.inclusion.subsume,
            hat_sfa::SubsumptionMode::Simulation,
            "the guard pins the default mode"
        );
        for m in &bench.methods {
            let report = checker
                .check_method(&m.sig, &m.body)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", bench.adt, bench.library));
            total += report.stats.product_states;
        }
    }
    if std::env::var_os("UPDATE_BASELINE").is_some() {
        std::fs::write(baseline_path, format!("{total}\n")).expect("baseline rewritten");
        return;
    }
    assert!(
        total <= recorded,
        "the corpus walk enqueued {total} product pairs, above the recorded baseline \
         of {recorded}: subsumption stopped pruning somewhere (re-record with \
         UPDATE_BASELINE=1 only if the growth is intended)"
    );
    // An implausibly small number means the corpus stopped exercising the walk at
    // all, which would hollow the guard out silently.
    assert!(
        total >= recorded / 2,
        "the corpus walk enqueued only {total} product pairs against a baseline of \
         {recorded} — if a real improvement halved the walk, re-record the baseline \
         so the guard stays tight"
    );
}
