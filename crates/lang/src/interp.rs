//! A trace-based big-step interpreter for λᴱ.
//!
//! The paper gives λᴱ an operational semantics parameterised by an *effect context*: a trace
//! of the effectful operations performed so far (Fig. 3/10). Each library defines how its
//! operators behave as a function of that trace (e.g. `get k` returns the value of the most
//! recent `put` of `k`, and gets stuck if there is none). The interpreter mirrors this: it
//! evaluates a program under a starting trace and extends the trace as effects happen, so
//! tests can validate that verified programs only ever produce traces accepted by their
//! representation invariant (Corollary 4.9).

use crate::ast::{Expr, Value};
use hat_logic::{Constant, Ident, Interpretation};
use hat_sfa::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Runtime values: constants, constructor values, and closures.
#[derive(Debug, Clone)]
pub enum RtValue {
    /// A constant.
    Const(Constant),
    /// A constructor value.
    Ctor(Ident, Vec<RtValue>),
    /// A closure (possibly recursive).
    Closure {
        /// `Some(f)` if the closure is recursive and `f` is bound to itself in the body.
        fixpoint: Option<Ident>,
        /// Parameter name.
        param: Ident,
        /// Body.
        body: Box<Expr>,
        /// Captured environment.
        env: Env,
    },
}

impl RtValue {
    /// The constant payload, if this is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            RtValue::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean constant (or boolean constructor).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            RtValue::Const(Constant::Bool(b)) => Some(*b),
            RtValue::Ctor(d, args) if args.is_empty() && d == "true" => Some(true),
            RtValue::Ctor(d, args) if args.is_empty() && d == "false" => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Const(c) => write!(f, "{c}"),
            RtValue::Ctor(d, args) if args.is_empty() => write!(f, "{d}"),
            RtValue::Ctor(d, args) => {
                write!(f, "{d}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            RtValue::Closure { param, .. } => write!(f, "<closure fun {param}>"),
        }
    }
}

/// Runtime environments.
pub type Env = BTreeMap<Ident, RtValue>;

/// Errors raised during evaluation. `Stuck` corresponds to the paper's "no reduction rule
/// applies" situations (e.g. `get` of a key that was never `put`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A variable had no binding.
    UnboundVariable(Ident),
    /// An effectful operator cannot step under the current trace.
    Stuck(String),
    /// A pure operator or application was used at the wrong type.
    TypeError(String),
    /// An operator is not handled by the library model.
    UnknownOperator(Ident),
    /// The evaluation exceeded the step bound (runaway recursion).
    OutOfFuel,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            InterpError::Stuck(m) => write!(f, "stuck: {m}"),
            InterpError::TypeError(m) => write!(f, "runtime type error: {m}"),
            InterpError::UnknownOperator(op) => write!(f, "unknown operator `{op}`"),
            InterpError::OutOfFuel => write!(f, "evaluation exceeded the step bound"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The behaviour of one effectful operator as a function of the current trace
/// (the `α ⊨ op v̄ ⇓ v` judgement of Fig. 10).
pub type EffectSemantics =
    Arc<dyn Fn(&Trace, &[Constant]) -> Result<Constant, InterpError> + Send + Sync>;

/// A library model: trace-based semantics for a set of effectful operators.
#[derive(Clone, Default)]
pub struct LibraryModel {
    handlers: BTreeMap<Ident, EffectSemantics>,
}

impl fmt::Debug for LibraryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LibraryModel")
            .field("ops", &self.handlers.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl LibraryModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the semantics of one operator.
    pub fn define<F>(&mut self, op: impl Into<Ident>, f: F) -> &mut Self
    where
        F: Fn(&Trace, &[Constant]) -> Result<Constant, InterpError> + Send + Sync + 'static,
    {
        self.handlers.insert(op.into(), Arc::new(f));
        self
    }

    /// Merges another model into this one.
    pub fn extend(&mut self, other: &LibraryModel) -> &mut Self {
        for (k, v) in &other.handlers {
            self.handlers.insert(k.clone(), v.clone());
        }
        self
    }

    /// The operators this model defines.
    pub fn ops(&self) -> Vec<Ident> {
        self.handlers.keys().cloned().collect()
    }

    /// Applies an operator under a trace.
    pub fn apply(
        &self,
        trace: &Trace,
        op: &str,
        args: &[Constant],
    ) -> Result<Constant, InterpError> {
        match self.handlers.get(op) {
            Some(h) => h(trace, args),
            None => Err(InterpError::UnknownOperator(op.to_string())),
        }
    }
}

/// The interpreter: a library model for effectful operators plus an interpretation of pure
/// named functions and method predicates.
#[derive(Debug, Clone)]
pub struct Interpreter {
    /// Semantics of the effectful operators.
    pub library: LibraryModel,
    /// Semantics of pure named functions and method predicates (e.g. `parent`, `isDir`).
    pub pure: Interpretation,
    /// Evaluation step bound.
    pub fuel: usize,
}

impl Interpreter {
    /// Creates an interpreter.
    pub fn new(library: LibraryModel, pure: Interpretation) -> Self {
        Interpreter {
            library,
            pure,
            fuel: 100_000,
        }
    }

    fn value(&self, env: &Env, v: &Value) -> Result<RtValue, InterpError> {
        match v {
            Value::Const(c) => Ok(RtValue::Const(c.clone())),
            Value::Var(x) => env
                .get(x)
                .cloned()
                .ok_or_else(|| InterpError::UnboundVariable(x.clone())),
            Value::Ctor(d, args) => {
                // The boolean constructors evaluate to boolean constants so that pure
                // operators and effect handlers can consume them uniformly.
                if args.is_empty() && d == "true" {
                    return Ok(RtValue::Const(Constant::Bool(true)));
                }
                if args.is_empty() && d == "false" {
                    return Ok(RtValue::Const(Constant::Bool(false)));
                }
                let vals: Vec<RtValue> = args
                    .iter()
                    .map(|a| self.value(env, a))
                    .collect::<Result<_, _>>()?;
                Ok(RtValue::Ctor(d.clone(), vals))
            }
            Value::Lambda { param, body, .. } => Ok(RtValue::Closure {
                fixpoint: None,
                param: param.clone(),
                body: body.clone(),
                env: env.clone(),
            }),
            Value::Fix {
                fname, param, body, ..
            } => Ok(RtValue::Closure {
                fixpoint: Some(fname.clone()),
                param: param.clone(),
                body: body.clone(),
                env: env.clone(),
            }),
        }
    }

    fn constant_args(&self, env: &Env, args: &[Value]) -> Result<Vec<Constant>, InterpError> {
        args.iter()
            .map(|a| {
                let v = self.value(env, a)?;
                v.as_const().cloned().ok_or_else(|| {
                    InterpError::TypeError(format!(
                        "operator argument `{v}` is not a first-order value"
                    ))
                })
            })
            .collect()
    }

    fn pure_op(&self, op: &str, args: &[Constant]) -> Result<Constant, InterpError> {
        let int = |c: &Constant| {
            c.as_int()
                .ok_or_else(|| InterpError::TypeError(format!("expected integer, got `{c}`")))
        };
        let boolean = |c: &Constant| {
            c.as_bool()
                .ok_or_else(|| InterpError::TypeError(format!("expected boolean, got `{c}`")))
        };
        match (op, args) {
            ("+", [a, b]) => Ok(Constant::Int(int(a)?.wrapping_add(int(b)?))),
            ("-", [a, b]) => Ok(Constant::Int(int(a)?.wrapping_sub(int(b)?))),
            ("*", [a, b]) => Ok(Constant::Int(int(a)?.wrapping_mul(int(b)?))),
            ("mod", [a, b]) => {
                let d = int(b)?;
                if d == 0 {
                    return Err(InterpError::TypeError("mod by zero".into()));
                }
                Ok(Constant::Int(int(a)?.rem_euclid(d)))
            }
            ("<", [a, b]) => Ok(Constant::Bool(int(a)? < int(b)?)),
            ("<=", [a, b]) => Ok(Constant::Bool(int(a)? <= int(b)?)),
            (">", [a, b]) => Ok(Constant::Bool(int(a)? > int(b)?)),
            (">=", [a, b]) => Ok(Constant::Bool(int(a)? >= int(b)?)),
            ("==", [a, b]) => Ok(Constant::Bool(a == b)),
            ("!=", [a, b]) => Ok(Constant::Bool(a != b)),
            ("not", [a]) => Ok(Constant::Bool(!boolean(a)?)),
            ("&&", [a, b]) => Ok(Constant::Bool(boolean(a)? && boolean(b)?)),
            ("||", [a, b]) => Ok(Constant::Bool(boolean(a)? || boolean(b)?)),
            _ => {
                // Named pure functions and method predicates come from the interpretation.
                if let Ok(c) = self.pure.func(op, args) {
                    return Ok(c);
                }
                match self.pure.pred(op, args) {
                    Ok(b) => Ok(Constant::Bool(b)),
                    Err(_) => Err(InterpError::UnknownOperator(op.to_string())),
                }
            }
        }
    }

    /// Evaluates an expression under an environment and an effect context, returning the
    /// result value and the extended trace.
    pub fn eval(
        &self,
        env: &Env,
        trace: &Trace,
        e: &Expr,
    ) -> Result<(RtValue, Trace), InterpError> {
        let mut fuel = self.fuel;
        let mut trace = trace.clone();
        let v = self.eval_inner(env, &mut trace, e, &mut fuel)?;
        Ok((v, trace))
    }

    fn eval_inner(
        &self,
        env: &Env,
        trace: &mut Trace,
        e: &Expr,
        fuel: &mut usize,
    ) -> Result<RtValue, InterpError> {
        if *fuel == 0 {
            return Err(InterpError::OutOfFuel);
        }
        *fuel -= 1;
        match e {
            Expr::Value(v) => self.value(env, v),
            Expr::LetPureOp { x, op, args, body } => {
                let argv = self.constant_args(env, args)?;
                let result = self.pure_op(op, &argv)?;
                let mut env2 = env.clone();
                env2.insert(x.clone(), RtValue::Const(result));
                self.eval_inner(&env2, trace, body, fuel)
            }
            Expr::LetEffOp { x, op, args, body } => {
                let argv = self.constant_args(env, args)?;
                let result = self.library.apply(trace, op, &argv)?;
                trace.push(Event::new(op.clone(), argv, result.clone()));
                let mut env2 = env.clone();
                env2.insert(x.clone(), RtValue::Const(result));
                self.eval_inner(&env2, trace, body, fuel)
            }
            Expr::LetApp { x, func, arg, body } => {
                let f = self.value(env, func)?;
                let a = self.value(env, arg)?;
                let result = self.apply_closure(f, a, trace, fuel)?;
                let mut env2 = env.clone();
                env2.insert(x.clone(), result);
                self.eval_inner(&env2, trace, body, fuel)
            }
            Expr::Let { x, rhs, body } => {
                let r = self.eval_inner(env, trace, rhs, fuel)?;
                let mut env2 = env.clone();
                env2.insert(x.clone(), r);
                self.eval_inner(&env2, trace, body, fuel)
            }
            Expr::Match { scrutinee, arms } => {
                let v = self.value(env, scrutinee)?;
                let (ctor, ctor_args) = match &v {
                    RtValue::Const(Constant::Bool(true)) => ("true".to_string(), Vec::new()),
                    RtValue::Const(Constant::Bool(false)) => ("false".to_string(), Vec::new()),
                    RtValue::Ctor(d, args) => (d.clone(), args.clone()),
                    other => {
                        return Err(InterpError::TypeError(format!(
                            "match on non-constructor value `{other}`"
                        )))
                    }
                };
                for arm in arms {
                    if arm.ctor == ctor {
                        let mut env2 = env.clone();
                        for (b, val) in arm.binders.iter().zip(ctor_args) {
                            env2.insert(b.clone(), val);
                        }
                        return self.eval_inner(&env2, trace, &arm.body, fuel);
                    }
                }
                Err(InterpError::Stuck(format!(
                    "no match arm for constructor `{ctor}`"
                )))
            }
        }
    }

    /// Applies a closure value to an argument (used for higher-order benchmarks like
    /// `LazySet`'s thunks).
    pub fn apply_closure(
        &self,
        f: RtValue,
        a: RtValue,
        trace: &mut Trace,
        fuel: &mut usize,
    ) -> Result<RtValue, InterpError> {
        match f {
            RtValue::Closure {
                fixpoint,
                param,
                body,
                env,
            } => {
                let mut env2 = env.clone();
                if let Some(fname) = &fixpoint {
                    env2.insert(
                        fname.clone(),
                        RtValue::Closure {
                            fixpoint: fixpoint.clone(),
                            param: param.clone(),
                            body: body.clone(),
                            env,
                        },
                    );
                }
                env2.insert(param, a);
                self.eval_inner(&env2, trace, &body, fuel)
            }
            other => Err(InterpError::TypeError(format!(
                "application of non-function value `{other}`"
            ))),
        }
    }
}

/// The trace-based key-value store model of the paper (Example 3.1): `put` always succeeds,
/// `exists` reports whether the key was ever put, `get` returns the most recent value put
/// for the key and gets stuck otherwise.
pub fn kvstore_model() -> LibraryModel {
    let mut m = LibraryModel::new();
    m.define("put", |_trace, args| match args {
        [_k, _v] => Ok(Constant::Unit),
        _ => Err(InterpError::TypeError("put expects 2 arguments".into())),
    });
    m.define("exists", |trace, args| match args {
        [k] => Ok(Constant::Bool(
            trace.any(|e| e.op == "put" && e.args.first() == Some(k)),
        )),
        _ => Err(InterpError::TypeError("exists expects 1 argument".into())),
    });
    m.define("get", |trace, args| match args {
        [k] => trace
            .last_matching(|e| e.op == "put" && e.args.first() == Some(k))
            .map(|e| e.args[1].clone())
            .ok_or_else(|| InterpError::Stuck(format!("get of a key never put: {k}"))),
        _ => Err(InterpError::TypeError("get expects 1 argument".into())),
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn interp() -> Interpreter {
        Interpreter::new(kvstore_model(), Interpretation::filesystem())
    }

    fn init_trace() -> Trace {
        Trace::from_events(vec![Event::new(
            "put",
            vec![Constant::atom("/"), Constant::atom("dir:root")],
            Constant::Unit,
        )])
    }

    /// The (incorrect) `add_bad` of Example 2.1: blindly put the path.
    fn add_bad() -> Expr {
        seq_eff(
            "put",
            vec![Value::var("path"), Value::var("bytes")],
            ret(Value::bool(true)),
        )
    }

    /// The correct `add` of Fig. 1 (specialised to files, without the parent-update step).
    fn add_ok() -> Expr {
        let_eff(
            "b",
            "exists",
            vec![Value::var("path")],
            ite(
                Value::var("b"),
                ret(Value::bool(false)),
                let_pure(
                    "pp",
                    "parent",
                    vec![Value::var("path")],
                    let_eff(
                        "pb",
                        "exists",
                        vec![Value::var("pp")],
                        ite(
                            Value::var("pb"),
                            let_eff(
                                "bytes2",
                                "get",
                                vec![Value::var("pp")],
                                let_pure(
                                    "d",
                                    "isDir",
                                    vec![Value::var("bytes2")],
                                    ite(
                                        Value::var("d"),
                                        seq_eff(
                                            "put",
                                            vec![Value::var("path"), Value::var("bytes")],
                                            ret(Value::bool(true)),
                                        ),
                                        ret(Value::bool(false)),
                                    ),
                                ),
                            ),
                            ret(Value::bool(false)),
                        ),
                    ),
                ),
            ),
        )
    }

    fn env_with(path: &str, bytes: &str) -> Env {
        let mut env = Env::new();
        env.insert("path".into(), RtValue::Const(Constant::atom(path)));
        env.insert("bytes".into(), RtValue::Const(Constant::atom(bytes)));
        env
    }

    #[test]
    fn example_2_1_traces_are_reproduced() {
        let i = interp();
        // add_bad "/a/b.txt" appends a put without any checks: trace α1 of the paper.
        let (v, t) = i
            .eval(&env_with("/a/b.txt", "file:1"), &init_trace(), &add_bad())
            .unwrap();
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().op, "put");
        // add "/a/b.txt" checks for the parent and fails: trace α2 of the paper.
        let (v, t) = i
            .eval(&env_with("/a/b.txt", "file:1"), &init_trace(), &add_ok())
            .unwrap();
        assert_eq!(v.as_bool(), Some(false));
        let ops: Vec<&str> = t.iter().map(|e| e.op.as_str()).collect();
        assert_eq!(ops, vec!["put", "exists", "exists"]);
        assert_eq!(t.get(1).unwrap().result, Constant::Bool(false));
        assert_eq!(t.get(2).unwrap().result, Constant::Bool(false));
    }

    #[test]
    fn add_succeeds_when_parent_is_a_directory() {
        let i = interp();
        let (v, t) = i
            .eval(&env_with("/a", "dir:a"), &init_trace(), &add_ok())
            .unwrap();
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(t.iter().filter(|e| e.op == "put").count(), 2);
        // Now add a file below it, starting from the produced trace.
        let (v2, t2) = i
            .eval(&env_with("/a/b.txt", "file:1"), &t, &add_ok())
            .unwrap();
        assert_eq!(v2.as_bool(), Some(true));
        assert!(t2.any(|e| e.op == "put" && e.args[0] == Constant::atom("/a/b.txt")));
    }

    #[test]
    fn get_of_missing_key_is_stuck() {
        let i = interp();
        let e = let_eff("x", "get", vec![Value::atom("/nope")], ret(Value::var("x")));
        let err = i.eval(&Env::new(), &init_trace(), &e).unwrap_err();
        assert!(matches!(err, InterpError::Stuck(_)));
    }

    #[test]
    fn get_returns_most_recent_put() {
        let i = interp();
        let mut t = init_trace();
        t.push(Event::new(
            "put",
            vec![Constant::atom("/a"), Constant::atom("dir:old")],
            Constant::Unit,
        ));
        t.push(Event::new(
            "put",
            vec![Constant::atom("/a"), Constant::atom("dir:new")],
            Constant::Unit,
        ));
        let e = let_eff("x", "get", vec![Value::atom("/a")], ret(Value::var("x")));
        let (v, _) = i.eval(&Env::new(), &t, &e).unwrap();
        assert_eq!(v.as_const(), Some(&Constant::atom("dir:new")));
    }

    #[test]
    fn pure_arithmetic_and_predicates() {
        let i = interp();
        let e = let_pure(
            "x",
            "+",
            vec![Value::int(2), Value::int(3)],
            let_pure(
                "b",
                "<",
                vec![Value::var("x"), Value::int(10)],
                ret(Value::var("b")),
            ),
        );
        let (v, t) = i.eval(&Env::new(), &Trace::new(), &e).unwrap();
        assert_eq!(v.as_bool(), Some(true));
        assert!(t.is_empty(), "pure operators must not extend the trace");
    }

    #[test]
    fn closures_and_recursion() {
        let i = interp();
        // let rec sum n = if n <= 0 then 0 else n + sum (n - 1)
        let sum = fix(
            "sum",
            crate::ast::BasicType::arrow(
                crate::ast::BasicType::int(),
                crate::ast::BasicType::int(),
            ),
            "n",
            crate::ast::BasicType::int(),
            let_pure(
                "stop",
                "<=",
                vec![Value::var("n"), Value::int(0)],
                ite(
                    Value::var("stop"),
                    ret(Value::int(0)),
                    let_pure(
                        "m",
                        "-",
                        vec![Value::var("n"), Value::int(1)],
                        let_app(
                            "rest",
                            Value::var("sum"),
                            Value::var("m"),
                            let_pure(
                                "total",
                                "+",
                                vec![Value::var("n"), Value::var("rest")],
                                ret(Value::var("total")),
                            ),
                        ),
                    ),
                ),
            ),
        );
        let e = let_in(
            "f",
            ret(sum),
            let_app("r", Value::var("f"), Value::int(5), ret(Value::var("r"))),
        );
        let (v, _) = i.eval(&Env::new(), &Trace::new(), &e).unwrap();
        assert_eq!(v.as_const(), Some(&Constant::Int(15)));
    }

    #[test]
    fn fuel_bound_stops_divergence() {
        let mut i = interp();
        i.fuel = 100;
        let loop_forever = fix(
            "loop",
            crate::ast::BasicType::arrow(
                crate::ast::BasicType::int(),
                crate::ast::BasicType::int(),
            ),
            "n",
            crate::ast::BasicType::int(),
            let_app(
                "r",
                Value::var("loop"),
                Value::var("n"),
                ret(Value::var("r")),
            ),
        );
        let e = let_in(
            "f",
            ret(loop_forever),
            let_app("r", Value::var("f"), Value::int(0), ret(Value::var("r"))),
        );
        assert_eq!(
            i.eval(&Env::new(), &Trace::new(), &e).unwrap_err(),
            InterpError::OutOfFuel
        );
    }
}
