//! A small builder API for writing λᴱ programs from Rust.
//!
//! The benchmark suite (`hat-suite`), the examples and the tests all construct their
//! programs with these helpers; they keep monadic-normal-form programs readable:
//!
//! ```
//! use hat_lang::builder::*;
//! use hat_lang::Value;
//!
//! // let b = exists path in if b then false else (let _ = put path bytes in true)
//! let add_naive = let_eff(
//!     "b",
//!     "exists",
//!     vec![Value::var("path")],
//!     ite(
//!         Value::var("b"),
//!         ret(Value::bool(false)),
//!         seq_eff("put", vec![Value::var("path"), Value::var("bytes")], ret(Value::bool(true))),
//!     ),
//! );
//! assert_eq!(add_naive.branch_count(), 2);
//! ```

use crate::ast::{BasicType, Expr, MatchArm, Value};
use hat_logic::Ident;

/// A value returned as the final result of a computation.
pub fn ret(v: Value) -> Expr {
    Expr::Value(v)
}

/// `let x = op v̄ in body` for an effectful operator.
pub fn let_eff(x: impl Into<Ident>, op: impl Into<Ident>, args: Vec<Value>, body: Expr) -> Expr {
    Expr::LetEffOp {
        x: x.into(),
        op: op.into(),
        args,
        body: Box::new(body),
    }
}

/// `op v̄; body` — effectful operator whose result is ignored.
pub fn seq_eff(op: impl Into<Ident>, args: Vec<Value>, body: Expr) -> Expr {
    let_eff(fresh_ignore(), op, args, body)
}

/// `let x = op v̄ in body` for a pure operator (arithmetic, method-predicate tests, ...).
pub fn let_pure(x: impl Into<Ident>, op: impl Into<Ident>, args: Vec<Value>, body: Expr) -> Expr {
    Expr::LetPureOp {
        x: x.into(),
        op: op.into(),
        args,
        body: Box::new(body),
    }
}

/// `let x = f v in body` — function application.
pub fn let_app(x: impl Into<Ident>, func: Value, arg: Value, body: Expr) -> Expr {
    Expr::LetApp {
        x: x.into(),
        func,
        arg,
        body: Box::new(body),
    }
}

/// `let x = e1 in e2`.
pub fn let_in(x: impl Into<Ident>, rhs: Expr, body: Expr) -> Expr {
    Expr::Let {
        x: x.into(),
        rhs: Box::new(rhs),
        body: Box::new(body),
    }
}

/// `match v with | ctor ȳ -> e | ...`
pub fn match_on(scrutinee: Value, arms: Vec<(Ident, Vec<Ident>, Expr)>) -> Expr {
    Expr::Match {
        scrutinee,
        arms: arms
            .into_iter()
            .map(|(ctor, binders, body)| MatchArm {
                ctor,
                binders,
                body,
            })
            .collect(),
    }
}

/// `if v then e1 else e2`, desugared to a match on the boolean constructors
/// (exactly how the paper treats conditionals).
pub fn ite(cond: Value, then_branch: Expr, else_branch: Expr) -> Expr {
    match_on(
        cond,
        vec![
            ("true".into(), vec![], then_branch),
            ("false".into(), vec![], else_branch),
        ],
    )
}

/// An anonymous function value.
pub fn lambda(param: impl Into<Ident>, param_ty: BasicType, body: Expr) -> Value {
    Value::Lambda {
        param: param.into(),
        param_ty,
        body: Box::new(body),
    }
}

/// A recursive function value `fix f. λx. body`.
pub fn fix(
    fname: impl Into<Ident>,
    fty: BasicType,
    param: impl Into<Ident>,
    param_ty: BasicType,
    body: Expr,
) -> Value {
    Value::Fix {
        fname: fname.into(),
        fty,
        param: param.into(),
        param_ty,
        body: Box::new(body),
    }
}

/// A "don't care" binder name; each call returns a distinct name so shadowing warnings in
/// downstream analyses are avoided.
pub fn fresh_ignore() -> Ident {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    format!("_ignore{}", COUNTER.fetch_add(1, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ite_desugars_to_match() {
        let e = ite(Value::var("b"), ret(Value::int(1)), ret(Value::int(2)));
        match e {
            Expr::Match { arms, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].ctor, "true");
                assert_eq!(arms[1].ctor, "false");
            }
            other => panic!("expected match, got {other}"),
        }
    }

    #[test]
    fn fresh_ignore_names_are_distinct() {
        assert_ne!(fresh_ignore(), fresh_ignore());
    }

    #[test]
    fn nested_lets_compose() {
        let e = let_pure(
            "pp",
            "parent",
            vec![Value::var("path")],
            let_eff("b", "exists", vec![Value::var("pp")], ret(Value::var("b"))),
        );
        assert_eq!(e.app_count(), 2);
        assert_eq!(e.effect_ops(), vec!["exists".to_string()]);
    }

    #[test]
    fn lambda_and_fix_builders() {
        let f = lambda("x", BasicType::int(), ret(Value::var("x")));
        assert!(matches!(f, Value::Lambda { .. }));
        let g = fix(
            "loop",
            BasicType::arrow(BasicType::int(), BasicType::int()),
            "n",
            BasicType::int(),
            ret(Value::var("n")),
        );
        assert!(matches!(g, Value::Fix { .. }));
    }
}
