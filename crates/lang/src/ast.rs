//! Abstract syntax of λᴱ (paper Fig. 2).
//!
//! Programs are in *monadic normal form*: the only compound expressions are let-bindings of
//! operator applications, function applications and nested computations, plus pattern
//! matching over values. This is the form the bidirectional type checker operates on.

use hat_logic::{Constant, Ident, Sort};
use std::fmt;

/// Basic (unrefined) types: base sorts and arrows. Refinement erasure (`⌊·⌋`) lands here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasicType {
    /// A base sort (`unit`, `bool`, `int`, `Path.t`, ...).
    Base(Sort),
    /// A function type.
    Arrow(Box<BasicType>, Box<BasicType>),
}

impl BasicType {
    /// A base type from a sort.
    pub fn base(sort: Sort) -> Self {
        BasicType::Base(sort)
    }

    /// The `bool` base type.
    pub fn bool() -> Self {
        BasicType::Base(Sort::Bool)
    }

    /// The `int` base type.
    pub fn int() -> Self {
        BasicType::Base(Sort::Int)
    }

    /// The `unit` base type.
    pub fn unit() -> Self {
        BasicType::Base(Sort::Unit)
    }

    /// An arrow type.
    pub fn arrow(a: BasicType, b: BasicType) -> Self {
        BasicType::Arrow(Box::new(a), Box::new(b))
    }

    /// The underlying sort, if this is a base type.
    pub fn as_base(&self) -> Option<&Sort> {
        match self {
            BasicType::Base(s) => Some(s),
            BasicType::Arrow(_, _) => None,
        }
    }
}

impl fmt::Display for BasicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicType::Base(s) => write!(f, "{s}"),
            BasicType::Arrow(a, b) => write!(f, "({a} -> {b})"),
        }
    }
}

/// Values (`v` in Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A constant.
    Const(Constant),
    /// A variable.
    Var(Ident),
    /// A data-constructor application (e.g. `true`, `None`, `Cons(x, xs)`).
    Ctor(Ident, Vec<Value>),
    /// A lambda abstraction with an annotated parameter type.
    Lambda {
        /// Parameter name.
        param: Ident,
        /// Parameter type annotation.
        param_ty: BasicType,
        /// Body computation.
        body: Box<Expr>,
    },
    /// A recursive function `fix f : t. λx : tx. e`.
    Fix {
        /// Name of the recursive function (bound in the body).
        fname: Ident,
        /// Type annotation of the recursive function.
        fty: BasicType,
        /// Parameter name.
        param: Ident,
        /// Parameter type annotation.
        param_ty: BasicType,
        /// Body computation.
        body: Box<Expr>,
    },
}

impl Value {
    /// A variable value.
    pub fn var(x: impl Into<Ident>) -> Self {
        Value::Var(x.into())
    }

    /// A constant value.
    pub fn constant(c: impl Into<Constant>) -> Self {
        Value::Const(c.into())
    }

    /// The boolean constant.
    pub fn bool(b: bool) -> Self {
        Value::Const(Constant::Bool(b))
    }

    /// The integer constant.
    pub fn int(i: i64) -> Self {
        Value::Const(Constant::Int(i))
    }

    /// The unit constant.
    pub fn unit() -> Self {
        Value::Const(Constant::Unit)
    }

    /// An atom constant (member of a named sort).
    pub fn atom(s: impl Into<String>) -> Self {
        Value::Const(Constant::Atom(s.into()))
    }

    /// Whether the identifier occurs anywhere in the value — as a binder or as a
    /// variable use.
    pub fn mentions_var(&self, x: &str) -> bool {
        match self {
            Value::Const(_) => false,
            Value::Var(y) => y == x,
            Value::Ctor(_, args) => args.iter().any(|a| a.mentions_var(x)),
            Value::Lambda { param, body, .. } => param == x || body.mentions_var(x),
            Value::Fix {
                fname, param, body, ..
            } => fname == x || param == x || body.mentions_var(x),
        }
    }

    /// Uniformly renames every occurrence of the identifier `from` — binding and use
    /// alike — to `to`. See [`Expr::rename_var`] for the freshness requirement on `to`.
    pub fn rename_var(&self, from: &str, to: &str) -> Value {
        let rx = |x: &Ident| {
            if x == from {
                to.to_string()
            } else {
                x.clone()
            }
        };
        match self {
            Value::Const(c) => Value::Const(c.clone()),
            Value::Var(x) => Value::Var(rx(x)),
            Value::Ctor(d, args) => Value::Ctor(
                d.clone(),
                args.iter().map(|a| a.rename_var(from, to)).collect(),
            ),
            Value::Lambda {
                param,
                param_ty,
                body,
            } => Value::Lambda {
                param: rx(param),
                param_ty: param_ty.clone(),
                body: Box::new(body.rename_var(from, to)),
            },
            Value::Fix {
                fname,
                fty,
                param,
                param_ty,
                body,
            } => Value::Fix {
                fname: rx(fname),
                fty: fty.clone(),
                param: rx(param),
                param_ty: param_ty.clone(),
                body: Box::new(body.rename_var(from, to)),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Var(x) => write!(f, "{x}"),
            Value::Ctor(d, args) if args.is_empty() => write!(f, "{d}"),
            Value::Ctor(d, args) => {
                write!(f, "{d}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Value::Lambda {
                param,
                param_ty,
                body,
            } => {
                write!(f, "(fun ({param}: {param_ty}) -> {body})")
            }
            Value::Fix {
                fname,
                param,
                param_ty,
                body,
                ..
            } => write!(f, "(fix {fname} (fun ({param}: {param_ty}) -> {body}))"),
        }
    }
}

/// One arm of a pattern match: a constructor pattern with binders and a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchArm {
    /// Constructor name (`true`, `false`, `None`, `Cons`, ...).
    pub ctor: Ident,
    /// Variables bound to the constructor's arguments.
    pub binders: Vec<Ident>,
    /// The arm's body.
    pub body: Expr,
}

/// Computations (`e` in Fig. 2), in monadic normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A value used as a (pure, effect-free) computation.
    Value(Value),
    /// `let x = op v̄ in e` — application of an *effectful* library operator.
    LetEffOp {
        /// Binder for the operator's result.
        x: Ident,
        /// Operator name (e.g. `put`).
        op: Ident,
        /// Argument values.
        args: Vec<Value>,
        /// Continuation.
        body: Box<Expr>,
    },
    /// `let x = op v̄ in e` — application of a *pure* built-in operator.
    LetPureOp {
        /// Binder for the operator's result.
        x: Ident,
        /// Operator name (e.g. `+`, `parent`, `isDir`).
        op: Ident,
        /// Argument values.
        args: Vec<Value>,
        /// Continuation.
        body: Box<Expr>,
    },
    /// `let x = v1 v2 in e` — function application.
    LetApp {
        /// Binder for the application's result.
        x: Ident,
        /// The function value.
        func: Value,
        /// The argument value.
        arg: Value,
        /// Continuation.
        body: Box<Expr>,
    },
    /// `let x = e1 in e2` — sequencing of computations.
    Let {
        /// Binder.
        x: Ident,
        /// Bound computation.
        rhs: Box<Expr>,
        /// Continuation.
        body: Box<Expr>,
    },
    /// `match v with d̄ ȳ -> ē` — pattern matching on a value.
    Match {
        /// The scrutinee.
        scrutinee: Value,
        /// The arms.
        arms: Vec<MatchArm>,
    },
}

impl Expr {
    /// A value computation.
    pub fn value(v: Value) -> Self {
        Expr::Value(v)
    }

    /// The number of control-flow branches of the expression — the `#Branch` metric of the
    /// paper's evaluation (a `match` with *n* arms contributes *n − 1* extra paths).
    pub fn branch_count(&self) -> usize {
        match self {
            Expr::Value(_) => 1,
            Expr::LetEffOp { body, .. }
            | Expr::LetPureOp { body, .. }
            | Expr::LetApp { body, .. } => body.branch_count(),
            Expr::Let { rhs, body, .. } => rhs.branch_count() + body.branch_count() - 1,
            Expr::Match { arms, .. } => arms
                .iter()
                .map(|a| a.body.branch_count())
                .sum::<usize>()
                .max(1),
        }
    }

    /// The number of operator and function applications — the `#App` metric of the paper.
    pub fn app_count(&self) -> usize {
        match self {
            Expr::Value(_) => 0,
            Expr::LetEffOp { body, .. }
            | Expr::LetPureOp { body, .. }
            | Expr::LetApp { body, .. } => 1 + body.app_count(),
            Expr::Let { rhs, body, .. } => rhs.app_count() + body.app_count(),
            Expr::Match { arms, .. } => arms.iter().map(|a| a.body.app_count()).sum(),
        }
    }

    /// Whether the identifier occurs anywhere in the expression — as a binder or as a
    /// variable use.
    pub fn mentions_var(&self, x: &str) -> bool {
        let value_mentions = |v: &Value| v.mentions_var(x);
        match self {
            Expr::Value(v) => value_mentions(v),
            Expr::LetEffOp {
                x: b, args, body, ..
            }
            | Expr::LetPureOp {
                x: b, args, body, ..
            } => b == x || args.iter().any(value_mentions) || body.mentions_var(x),
            Expr::LetApp {
                x: b,
                func,
                arg,
                body,
            } => b == x || value_mentions(func) || value_mentions(arg) || body.mentions_var(x),
            Expr::Let { x: b, rhs, body } => b == x || rhs.mentions_var(x) || body.mentions_var(x),
            Expr::Match { scrutinee, arms } => {
                value_mentions(scrutinee)
                    || arms
                        .iter()
                        .any(|a| a.binders.iter().any(|b| b == x) || a.body.mentions_var(x))
            }
        }
    }

    /// Uniformly renames every occurrence of the identifier `from` — binding and use
    /// alike — to `to`. Sound as an α-renaming only when `to` occurs nowhere in the
    /// expression; the caller supplies a fresh name. Used by the checker to move
    /// program variables out of reserved namespaces (e.g. a parameter that shadows
    /// the refinement binder ν) without changing the program's meaning.
    pub fn rename_var(&self, from: &str, to: &str) -> Expr {
        let rv = |v: &Value| v.rename_var(from, to);
        let rx = |x: &Ident| {
            if x == from {
                to.to_string()
            } else {
                x.clone()
            }
        };
        match self {
            Expr::Value(v) => Expr::Value(rv(v)),
            Expr::LetEffOp { x, op, args, body } => Expr::LetEffOp {
                x: rx(x),
                op: op.clone(),
                args: args.iter().map(&rv).collect(),
                body: Box::new(body.rename_var(from, to)),
            },
            Expr::LetPureOp { x, op, args, body } => Expr::LetPureOp {
                x: rx(x),
                op: op.clone(),
                args: args.iter().map(&rv).collect(),
                body: Box::new(body.rename_var(from, to)),
            },
            Expr::LetApp { x, func, arg, body } => Expr::LetApp {
                x: rx(x),
                func: rv(func),
                arg: rv(arg),
                body: Box::new(body.rename_var(from, to)),
            },
            Expr::Let { x, rhs, body } => Expr::Let {
                x: rx(x),
                rhs: Box::new(rhs.rename_var(from, to)),
                body: Box::new(body.rename_var(from, to)),
            },
            Expr::Match { scrutinee, arms } => Expr::Match {
                scrutinee: rv(scrutinee),
                arms: arms
                    .iter()
                    .map(|a| MatchArm {
                        ctor: a.ctor.clone(),
                        binders: a.binders.iter().map(&rx).collect(),
                        body: a.body.rename_var(from, to),
                    })
                    .collect(),
            },
        }
    }

    /// Names of the effectful operators syntactically used by the expression
    /// (an over-approximation for nested lambdas).
    pub fn effect_ops(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_effect_ops(&mut out);
        out
    }

    fn collect_effect_ops(&self, out: &mut Vec<Ident>) {
        match self {
            Expr::Value(Value::Lambda { body, .. }) | Expr::Value(Value::Fix { body, .. }) => {
                body.collect_effect_ops(out)
            }
            Expr::Value(_) => {}
            Expr::LetEffOp { op, body, .. } => {
                if !out.contains(op) {
                    out.push(op.clone());
                }
                body.collect_effect_ops(out);
            }
            Expr::LetPureOp { body, .. } | Expr::LetApp { body, .. } => {
                body.collect_effect_ops(out)
            }
            Expr::Let { rhs, body, .. } => {
                rhs.collect_effect_ops(out);
                body.collect_effect_ops(out);
            }
            Expr::Match { arms, .. } => {
                for a in arms {
                    a.body.collect_effect_ops(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Value(v) => write!(f, "{v}"),
            Expr::LetEffOp { x, op, args, body } | Expr::LetPureOp { x, op, args, body } => {
                write!(f, "let {x} = {op}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, " in {body}")
            }
            Expr::LetApp { x, func, arg, body } => {
                write!(f, "let {x} = {func} {arg} in {body}")
            }
            Expr::Let { x, rhs, body } => write!(f, "let {x} = ({rhs}) in {body}"),
            Expr::Match { scrutinee, arms } => {
                write!(f, "match {scrutinee} with")?;
                for arm in arms {
                    write!(f, " | {}", arm.ctor)?;
                    for b in &arm.binders {
                        write!(f, " {b}")?;
                    }
                    write!(f, " -> {}", arm.body)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn display_of_values() {
        assert_eq!(Value::int(3).to_string(), "3");
        assert_eq!(Value::var("x").to_string(), "x");
        assert_eq!(Value::Ctor("None".into(), vec![]).to_string(), "None");
        assert_eq!(
            Value::Ctor("Cons".into(), vec![Value::int(1), Value::var("xs")]).to_string(),
            "Cons(1, xs)"
        );
    }

    #[test]
    fn branch_and_app_counts() {
        // if exists path then false else (put path bytes; true)
        let e = let_eff(
            "b",
            "exists",
            vec![Value::var("path")],
            ite(
                Value::var("b"),
                ret(Value::bool(false)),
                let_eff(
                    "u",
                    "put",
                    vec![Value::var("path"), Value::var("bytes")],
                    ret(Value::bool(true)),
                ),
            ),
        );
        assert_eq!(e.branch_count(), 2);
        assert_eq!(e.app_count(), 2);
        assert_eq!(
            e.effect_ops(),
            vec!["exists".to_string(), "put".to_string()]
        );
    }

    #[test]
    fn basic_type_display_and_accessors() {
        let t = BasicType::arrow(BasicType::base(Sort::named("Path.t")), BasicType::bool());
        assert_eq!(t.to_string(), "(Path.t -> bool)");
        assert!(t.as_base().is_none());
        assert_eq!(BasicType::int().as_base(), Some(&Sort::Int));
    }

    #[test]
    fn expr_display_mentions_operators() {
        let e = let_eff(
            "u",
            "put",
            vec![Value::var("k"), Value::var("v")],
            ret(Value::unit()),
        );
        let s = e.to_string();
        assert!(s.contains("put"));
        assert!(s.contains("let u"));
    }
}
