//! # hat-lang
//!
//! The core calculus **λᴱ** of the HAT paper (§3): a call-by-value functional language in
//! monadic normal form with pure operators, *effectful* library operators, inductive data,
//! pattern matching and recursion.
//!
//! The crate provides:
//!
//! * the abstract syntax ([`ast`]) split into values and computations, exactly as in
//!   Fig. 2 of the paper,
//! * an ergonomic builder API ([`builder`]) used by the benchmark suite and tests to write
//!   λᴱ programs from Rust,
//! * a basic (simply-typed) type checker ([`basic`]) implementing the `⊢s` judgement that
//!   the refinement system assumes as a precondition,
//! * a trace-based big-step interpreter ([`interp`]) whose effectful operators are resolved
//!   against pluggable library models, mirroring the `α ⊨ e ⇓ v` semantics of Fig. 3/10.

pub mod ast;
pub mod basic;
pub mod builder;
pub mod interp;

pub use ast::{BasicType, Expr, MatchArm, Value};
pub use basic::{BasicTyCtx, BasicTypeError};
pub use interp::{EffectSemantics, InterpError, Interpreter, LibraryModel};
