//! Basic (simply-typed) type checking — the `⊢s` judgement of the paper (Fig. 11).
//!
//! The refinement/HAT type system assumes every term is well-typed at the basic level;
//! this module provides that check, with operator and constructor signatures supplied by
//! the library models.

use crate::ast::{BasicType, Expr, Value};
use hat_logic::{Constant, Ident, Sort};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by basic type checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasicTypeError {
    /// A variable was not bound in the context.
    UnboundVariable(Ident),
    /// An operator (pure or effectful) is not declared.
    UnknownOperator(Ident),
    /// A data constructor is not declared.
    UnknownConstructor(Ident),
    /// An application or operator call had the wrong argument type or arity.
    Mismatch(String),
}

impl fmt::Display for BasicTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicTypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            BasicTypeError::UnknownOperator(op) => write!(f, "unknown operator `{op}`"),
            BasicTypeError::UnknownConstructor(d) => write!(f, "unknown constructor `{d}`"),
            BasicTypeError::Mismatch(m) => write!(f, "type mismatch: {m}"),
        }
    }
}

impl std::error::Error for BasicTypeError {}

/// The basic typing context: variables, operator signatures and constructor signatures.
#[derive(Debug, Clone, Default)]
pub struct BasicTyCtx {
    /// Variable bindings.
    pub vars: BTreeMap<Ident, BasicType>,
    /// Pure operator signatures (argument types, result type).
    pub pure_ops: BTreeMap<Ident, (Vec<BasicType>, BasicType)>,
    /// Effectful operator signatures.
    pub eff_ops: BTreeMap<Ident, (Vec<BasicType>, BasicType)>,
    /// Data-constructor signatures.
    pub ctors: BTreeMap<Ident, (Vec<BasicType>, BasicType)>,
}

impl BasicTyCtx {
    /// A context pre-populated with the boolean constructors and the standard pure
    /// operators of λᴱ (arithmetic, comparisons, boolean connectives).
    pub fn standard() -> Self {
        let mut ctx = BasicTyCtx::default();
        ctx.ctors.insert("true".into(), (vec![], BasicType::bool()));
        ctx.ctors
            .insert("false".into(), (vec![], BasicType::bool()));
        for op in ["+", "-", "*", "mod"] {
            ctx.pure_ops.insert(
                op.into(),
                (vec![BasicType::int(), BasicType::int()], BasicType::int()),
            );
        }
        for op in ["<", "<=", ">", ">="] {
            ctx.pure_ops.insert(
                op.into(),
                (vec![BasicType::int(), BasicType::int()], BasicType::bool()),
            );
        }
        ctx.pure_ops
            .insert("not".into(), (vec![BasicType::bool()], BasicType::bool()));
        for op in ["&&", "||"] {
            ctx.pure_ops.insert(
                op.into(),
                (
                    vec![BasicType::bool(), BasicType::bool()],
                    BasicType::bool(),
                ),
            );
        }
        ctx
    }

    /// Binds a variable.
    pub fn bind(&mut self, x: impl Into<Ident>, t: BasicType) -> &mut Self {
        self.vars.insert(x.into(), t);
        self
    }

    /// Declares a pure operator.
    pub fn declare_pure(&mut self, op: impl Into<Ident>, args: Vec<BasicType>, ret: BasicType) {
        self.pure_ops.insert(op.into(), (args, ret));
    }

    /// Declares an effectful operator.
    pub fn declare_eff(&mut self, op: impl Into<Ident>, args: Vec<BasicType>, ret: BasicType) {
        self.eff_ops.insert(op.into(), (args, ret));
    }

    fn constant_type(c: &Constant) -> BasicType {
        match c {
            Constant::Unit => BasicType::unit(),
            Constant::Bool(_) => BasicType::bool(),
            Constant::Int(_) => BasicType::int(),
            Constant::Atom(_) => BasicType::base(Sort::named("atom")),
        }
    }

    fn compatible(expected: &BasicType, actual: &BasicType) -> bool {
        match (expected, actual) {
            // Atom constants inhabit any named sort.
            (BasicType::Base(Sort::Named(_)), BasicType::Base(Sort::Named(n))) if n == "atom" => {
                true
            }
            (BasicType::Arrow(a1, b1), BasicType::Arrow(a2, b2)) => {
                Self::compatible(a1, a2) && Self::compatible(b1, b2)
            }
            _ => expected == actual,
        }
    }

    /// Infers the basic type of a value.
    pub fn check_value(&self, v: &Value) -> Result<BasicType, BasicTypeError> {
        match v {
            Value::Const(c) => Ok(Self::constant_type(c)),
            Value::Var(x) => self
                .vars
                .get(x)
                .cloned()
                .ok_or_else(|| BasicTypeError::UnboundVariable(x.clone())),
            Value::Ctor(d, args) => {
                let (arg_tys, ret) = self
                    .ctors
                    .get(d)
                    .cloned()
                    .ok_or_else(|| BasicTypeError::UnknownConstructor(d.clone()))?;
                if arg_tys.len() != args.len() {
                    return Err(BasicTypeError::Mismatch(format!(
                        "constructor `{d}` expects {} arguments, got {}",
                        arg_tys.len(),
                        args.len()
                    )));
                }
                for (expected, actual) in arg_tys.iter().zip(args) {
                    let at = self.check_value(actual)?;
                    if !Self::compatible(expected, &at) {
                        return Err(BasicTypeError::Mismatch(format!(
                            "constructor `{d}` argument expected {expected}, got {at}"
                        )));
                    }
                }
                Ok(ret)
            }
            Value::Lambda {
                param,
                param_ty,
                body,
            } => {
                let mut inner = self.clone();
                inner.bind(param.clone(), param_ty.clone());
                let body_ty = inner.check_expr(body)?;
                Ok(BasicType::arrow(param_ty.clone(), body_ty))
            }
            Value::Fix {
                fname,
                fty,
                param,
                param_ty,
                body,
            } => {
                let mut inner = self.clone();
                inner.bind(fname.clone(), fty.clone());
                inner.bind(param.clone(), param_ty.clone());
                let body_ty = inner.check_expr(body)?;
                let actual = BasicType::arrow(param_ty.clone(), body_ty);
                if !Self::compatible(fty, &actual) {
                    return Err(BasicTypeError::Mismatch(format!(
                        "fix `{fname}` annotated {fty} but body has type {actual}"
                    )));
                }
                Ok(fty.clone())
            }
        }
    }

    fn check_op_args(
        &self,
        op: &str,
        arg_tys: &[BasicType],
        args: &[Value],
    ) -> Result<(), BasicTypeError> {
        if arg_tys.len() != args.len() {
            return Err(BasicTypeError::Mismatch(format!(
                "operator `{op}` expects {} arguments, got {}",
                arg_tys.len(),
                args.len()
            )));
        }
        for (expected, actual) in arg_tys.iter().zip(args) {
            let at = self.check_value(actual)?;
            if !Self::compatible(expected, &at) {
                return Err(BasicTypeError::Mismatch(format!(
                    "operator `{op}` argument expected {expected}, got {at}"
                )));
            }
        }
        Ok(())
    }

    /// Infers the basic type of a computation.
    pub fn check_expr(&self, e: &Expr) -> Result<BasicType, BasicTypeError> {
        match e {
            Expr::Value(v) => self.check_value(v),
            Expr::LetPureOp { x, op, args, body } => {
                // Equality is polymorphic over base types.
                if op == "==" || op == "!=" {
                    if args.len() != 2 {
                        return Err(BasicTypeError::Mismatch(format!(
                            "operator `{op}` expects 2 arguments, got {}",
                            args.len()
                        )));
                    }
                    let t1 = self.check_value(&args[0])?;
                    let t2 = self.check_value(&args[1])?;
                    if !Self::compatible(&t1, &t2) && !Self::compatible(&t2, &t1) {
                        return Err(BasicTypeError::Mismatch(format!(
                            "cannot compare `{t1}` with `{t2}`"
                        )));
                    }
                    let mut inner = self.clone();
                    inner.bind(x.clone(), BasicType::bool());
                    return inner.check_expr(body);
                }
                let (arg_tys, ret) = self
                    .pure_ops
                    .get(op)
                    .cloned()
                    .ok_or_else(|| BasicTypeError::UnknownOperator(op.clone()))?;
                self.check_op_args(op, &arg_tys, args)?;
                let mut inner = self.clone();
                inner.bind(x.clone(), ret);
                inner.check_expr(body)
            }
            Expr::LetEffOp { x, op, args, body } => {
                let (arg_tys, ret) = self
                    .eff_ops
                    .get(op)
                    .cloned()
                    .ok_or_else(|| BasicTypeError::UnknownOperator(op.clone()))?;
                self.check_op_args(op, &arg_tys, args)?;
                let mut inner = self.clone();
                inner.bind(x.clone(), ret);
                inner.check_expr(body)
            }
            Expr::LetApp { x, func, arg, body } => {
                let fty = self.check_value(func)?;
                let aty = self.check_value(arg)?;
                match fty {
                    BasicType::Arrow(expected, ret) => {
                        if !Self::compatible(&expected, &aty) {
                            return Err(BasicTypeError::Mismatch(format!(
                                "application expected argument of type {expected}, got {aty}"
                            )));
                        }
                        let mut inner = self.clone();
                        inner.bind(x.clone(), *ret);
                        inner.check_expr(body)
                    }
                    other => Err(BasicTypeError::Mismatch(format!(
                        "application of non-function value of type {other}"
                    ))),
                }
            }
            Expr::Let { x, rhs, body } => {
                let rt = self.check_expr(rhs)?;
                let mut inner = self.clone();
                inner.bind(x.clone(), rt);
                inner.check_expr(body)
            }
            Expr::Match { scrutinee, arms } => {
                let _ = self.check_value(scrutinee)?;
                let mut result: Option<BasicType> = None;
                for arm in arms {
                    let (arg_tys, _) = self
                        .ctors
                        .get(&arm.ctor)
                        .cloned()
                        .ok_or_else(|| BasicTypeError::UnknownConstructor(arm.ctor.clone()))?;
                    let mut inner = self.clone();
                    for (b, t) in arm.binders.iter().zip(arg_tys) {
                        inner.bind(b.clone(), t);
                    }
                    let at = inner.check_expr(&arm.body)?;
                    match &result {
                        None => result = Some(at),
                        Some(prev)
                            if Self::compatible(prev, &at) || Self::compatible(&at, prev) => {}
                        Some(prev) => {
                            return Err(BasicTypeError::Mismatch(format!(
                                "match arms have different types: {prev} vs {at}"
                            )))
                        }
                    }
                }
                result.ok_or_else(|| BasicTypeError::Mismatch("empty match".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn kv_ctx() -> BasicTyCtx {
        let mut ctx = BasicTyCtx::standard();
        let path = BasicType::base(Sort::named("Path.t"));
        let bytes = BasicType::base(Sort::named("Bytes.t"));
        ctx.declare_eff("put", vec![path.clone(), bytes.clone()], BasicType::unit());
        ctx.declare_eff("exists", vec![path.clone()], BasicType::bool());
        ctx.declare_eff("get", vec![path.clone()], bytes.clone());
        ctx.declare_pure("parent", vec![path.clone()], path.clone());
        ctx.declare_pure("isDir", vec![bytes], BasicType::bool());
        ctx.bind("path", path);
        ctx.bind("bytes", BasicType::base(Sort::named("Bytes.t")));
        ctx
    }

    #[test]
    fn well_typed_filesystem_fragment() {
        let ctx = kv_ctx();
        let e = let_eff(
            "b",
            "exists",
            vec![Value::var("path")],
            ite(
                Value::var("b"),
                ret(Value::bool(false)),
                let_pure(
                    "pp",
                    "parent",
                    vec![Value::var("path")],
                    let_eff(
                        "u",
                        "put",
                        vec![Value::var("pp"), Value::var("bytes")],
                        ret(Value::bool(true)),
                    ),
                ),
            ),
        );
        assert_eq!(ctx.check_expr(&e).unwrap(), BasicType::bool());
    }

    #[test]
    fn unbound_variable_is_reported() {
        let ctx = kv_ctx();
        let e = ret(Value::var("nope"));
        assert_eq!(
            ctx.check_expr(&e),
            Err(BasicTypeError::UnboundVariable("nope".into()))
        );
    }

    #[test]
    fn operator_arity_is_checked() {
        let ctx = kv_ctx();
        let e = let_eff("u", "put", vec![Value::var("path")], ret(Value::unit()));
        assert!(matches!(
            ctx.check_expr(&e),
            Err(BasicTypeError::Mismatch(_))
        ));
        let e2 = let_eff("u", "frobnicate", vec![], ret(Value::unit()));
        assert!(matches!(
            ctx.check_expr(&e2),
            Err(BasicTypeError::UnknownOperator(_))
        ));
    }

    #[test]
    fn branch_types_must_agree() {
        let ctx = kv_ctx();
        let e = ite(
            Value::bool(true),
            ret(Value::int(1)),
            ret(Value::bool(false)),
        );
        assert!(matches!(
            ctx.check_expr(&e),
            Err(BasicTypeError::Mismatch(_))
        ));
    }

    #[test]
    fn lambda_and_application() {
        let mut ctx = kv_ctx();
        ctx.bind("n", BasicType::int());
        let inc = lambda(
            "x",
            BasicType::int(),
            let_pure(
                "y",
                "+",
                vec![Value::var("x"), Value::int(1)],
                ret(Value::var("y")),
            ),
        );
        assert_eq!(
            ctx.check_value(&inc).unwrap(),
            BasicType::arrow(BasicType::int(), BasicType::int())
        );
        let e = let_in(
            "f",
            ret(inc),
            let_app("r", Value::var("f"), Value::var("n"), ret(Value::var("r"))),
        );
        assert_eq!(ctx.check_expr(&e).unwrap(), BasicType::int());
    }

    #[test]
    fn atom_constants_inhabit_named_sorts() {
        let ctx = kv_ctx();
        let e = let_eff("b", "exists", vec![Value::atom("/a")], ret(Value::var("b")));
        assert_eq!(ctx.check_expr(&e).unwrap(), BasicType::bool());
    }
}
