//! Cross-crate integration tests: the checker's verdicts match expectations on fast
//! benchmark configurations, and (an empirical reading of Corollary 4.9) traces produced
//! by running verified methods through the interpreter are accepted by the representation
//! invariant.

use hat_lang::interp::{Env, Interpreter, RtValue};
use hat_logic::{Constant, Interpretation};
use hat_sfa::{accepts, Trace, TraceModel};

/// The shared deterministic xorshift generator (`hat-testkit`), so the randomised-replay
/// tests below run without a property-testing dependency (the build environment is
/// offline). The sequences are fixed across runs, which also makes failures
/// reproducible from a single printed seed.
use hat_testkit::XorShift;

#[test]
fn fast_configurations_match_expected_verdicts() {
    for (adt, lib) in [
        ("Set", "KVStore"),
        ("Heap", "Tree"),
        ("Stack", "KVStore"),
        ("Stack", "LinkedList"),
        ("ConnectedGraph", "Set"),
        ("ConnectedGraph", "Graph"),
        ("DFA", "KVStore"),
    ] {
        let bench = hat_suite::find(adt, lib).expect("configuration exists");
        let reports = bench.check_all();
        for (m, r) in bench.methods.iter().zip(&reports) {
            assert_eq!(
                r.verified, m.expect_verified,
                "{}/{}::{} expected verified={}, failures: {:?}",
                adt, lib, m.sig.name, m.expect_verified, r.failures
            );
        }
    }
}

/// Corollary 4.9, empirically: replaying the verified guarded Set insert over random
/// insertion sequences never produces a trace that violates the uniqueness invariant,
/// for any choice of the ghost element.
#[test]
fn verified_set_insert_preserves_uniqueness() {
    let bench = hat_suite::find("ConnectedGraph", "Set").expect("configuration exists");
    let insert = &bench
        .methods
        .iter()
        .find(|m| m.sig.name == "add_transition")
        .expect("method exists")
        .body;
    let interp = Interpreter::new(bench.model.clone(), Interpretation::new());
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for _case in 0..16 {
        let len = rng.below(12) as usize;
        let elems: Vec<i64> = (0..len).map(|_| rng.below(8) as i64).collect();
        let mut trace = Trace::new();
        for e in &elems {
            let mut env = Env::new();
            env.insert("pair".into(), RtValue::Const(Constant::Int(*e)));
            let (_, t) = interp
                .eval(&env, &trace, insert)
                .expect("evaluation succeeds");
            trace = t;
        }
        for el in 0i64..8 {
            let model = TraceModel::new(Interpretation::new()).bind("el", Constant::Int(el));
            assert!(
                accepts(&model, &trace, &bench.invariant).expect("acceptance is defined"),
                "invariant violated for el = {el} on trace {trace} (elems {elems:?})"
            );
        }
    }
}

/// The buggy unguarded insert *does* violate the invariant on some runs — the checker's
/// rejection is not vacuous.
#[test]
fn buggy_insert_violates_uniqueness_dynamically() {
    let bench = hat_suite::find("ConnectedGraph", "Set").expect("configuration exists");
    let bad = &bench
        .methods
        .iter()
        .find(|m| !m.expect_verified)
        .expect("buggy method exists")
        .body;
    let interp = Interpreter::new(bench.model.clone(), Interpretation::new());
    for elem in 0i64..4 {
        let mut trace = Trace::new();
        for _ in 0..2 {
            let mut env = Env::new();
            env.insert("pair".into(), RtValue::Const(Constant::Int(elem)));
            let (_, t) = interp.eval(&env, &trace, bad).expect("evaluation succeeds");
            trace = t;
        }
        let model = TraceModel::new(Interpretation::new()).bind("el", Constant::Int(elem));
        assert!(!accepts(&model, &trace, &bench.invariant).expect("acceptance is defined"));
    }
}
