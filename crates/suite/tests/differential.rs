//! Suite-level differential harness: the naive and incremental enumeration strategies
//! must produce identical verdicts (and identical failure messages) on real benchmark
//! configurations, with the incremental strategy never doing more solver work — the
//! pruned DFA-construction path must be verdict- and state-count-identical to the
//! unpruned one — and the on-the-fly product-walk inclusion pipeline must be
//! verdict-identical to the materialising baseline while never doing more construction
//! work. This complements the randomised harnesses in
//! `hat-sfa/tests/minterm_differential.rs`, `hat-sfa/tests/dfa_differential.rs` and
//! `hat-sfa/tests/inclusion_differential.rs` with the actual verification workload.

use hat_sfa::{EnumerationMode, InclusionMode};

/// Small configurations keep the naive baseline affordable in debug builds; between them
/// they cover ghost variables, intersection types, uniform-literal groups and both
/// verdict polarities (each has at least one deliberately buggy method).
const FAST_CONFIGS: [(&str, &str); 3] = [
    ("Stack", "LinkedList"),
    ("ConnectedGraph", "Set"),
    ("Heap", "Tree"),
];

#[test]
fn naive_and_incremental_checkers_agree_on_fast_configs() {
    for (adt, lib) in FAST_CONFIGS {
        let bench = hat_suite::find(adt, lib).expect("configuration exists");
        let mut naive_checker = bench.checker();
        naive_checker.inclusion.enumeration = EnumerationMode::Naive;
        let mut inc_checker = bench.checker();
        inc_checker.inclusion.enumeration = EnumerationMode::Incremental;

        let mut naive_work = 0usize;
        let mut inc_work = 0usize;
        for m in &bench.methods {
            let naive = naive_checker
                .check_method(&m.sig, &m.body)
                .expect("naive check runs");
            let incremental = inc_checker
                .check_method(&m.sig, &m.body)
                .expect("incremental check runs");
            assert_eq!(
                naive.verified, incremental.verified,
                "{adt}/{lib}::{} verdict diverged between enumeration modes",
                m.sig.name
            );
            assert_eq!(
                naive.failures, incremental.failures,
                "{adt}/{lib}::{} failure messages diverged",
                m.sig.name
            );
            assert_eq!(
                naive.verified, m.expect_verified,
                "{adt}/{lib}::{} regressed against the expected verdict",
                m.sig.name
            );
            // Naive enumeration issues standalone queries; incremental issues scoped
            // checks on top of its remaining standalone queries.
            assert_eq!(
                naive.stats.enum_queries, 0,
                "naive mode must not use sessions"
            );
            naive_work += naive.stats.sat_queries;
            inc_work += incremental.stats.sat_queries + incremental.stats.enum_queries;
        }
        assert!(
            inc_work <= naive_work,
            "{adt}/{lib}: incremental total work {inc_work} exceeds naive {naive_work}"
        );
        assert!(
            inc_work > 0,
            "{adt}/{lib}: the incremental run did no solver work at all"
        );
    }
}

#[test]
fn pruned_and_unpruned_checkers_agree_on_fast_configs() {
    let mut pruned_something = false;
    for (adt, lib) in FAST_CONFIGS {
        let bench = hat_suite::find(adt, lib).expect("configuration exists");
        let mut unpruned_checker = bench.checker();
        unpruned_checker.inclusion.prune = false;
        let mut pruned_checker = bench.checker();
        assert!(
            pruned_checker.inclusion.prune,
            "pruning must be the default"
        );

        for m in &bench.methods {
            let unpruned = unpruned_checker
                .check_method(&m.sig, &m.body)
                .expect("unpruned check runs");
            let pruned = pruned_checker
                .check_method(&m.sig, &m.body)
                .expect("pruned check runs");
            assert_eq!(
                unpruned.verified, pruned.verified,
                "{adt}/{lib}::{} verdict diverged between pruning modes",
                m.sig.name
            );
            assert_eq!(
                unpruned.failures, pruned.failures,
                "{adt}/{lib}::{} failure messages diverged",
                m.sig.name
            );
            assert_eq!(
                unpruned.stats.dfa_states, pruned.stats.dfa_states,
                "{adt}/{lib}::{} pruning changed the reachable DFA state set",
                m.sig.name
            );
            assert!(
                pruned.stats.dfa_transitions <= unpruned.stats.dfa_transitions,
                "{adt}/{lib}::{} pruning produced more transitions",
                m.sig.name
            );
            pruned_something |= pruned.stats.alphabet_pruned > 0;
        }
    }
    assert!(
        pruned_something,
        "no fast config exercised the alphabet pruner"
    );
}

#[test]
fn onthefly_and_materialised_checkers_agree_on_fast_configs() {
    let mut exited_early_somewhere = false;
    for (adt, lib) in FAST_CONFIGS {
        let bench = hat_suite::find(adt, lib).expect("configuration exists");
        let mut materialised_checker = bench.checker();
        materialised_checker.inclusion.mode = InclusionMode::Materialise;
        let mut otf_checker = bench.checker();
        assert_eq!(
            otf_checker.inclusion.mode,
            InclusionMode::OnTheFly,
            "the on-the-fly walk must be the default"
        );

        for m in &bench.methods {
            let materialised = materialised_checker
                .check_method(&m.sig, &m.body)
                .expect("materialised check runs");
            let onthefly = otf_checker
                .check_method(&m.sig, &m.body)
                .expect("on-the-fly check runs");
            assert_eq!(
                materialised.verified, onthefly.verified,
                "{adt}/{lib}::{} verdict diverged between inclusion modes",
                m.sig.name
            );
            assert_eq!(
                materialised.failures, onthefly.failures,
                "{adt}/{lib}::{} failure messages diverged",
                m.sig.name
            );
            assert_eq!(
                materialised.verified, m.expect_verified,
                "{adt}/{lib}::{} regressed against the expected verdict",
                m.sig.name
            );
            // The lazy walk derives rows only for frontier-reached residual states.
            assert!(
                onthefly.stats.dfa_transitions <= materialised.stats.dfa_transitions,
                "{adt}/{lib}::{} the walk derived more transitions than the complete builds",
                m.sig.name
            );
            // A rejected method contains at least one failing inclusion whose walk
            // stopped at a counterexample pair before exhausting the product.
            exited_early_somewhere |= !onthefly.verified
                && onthefly.stats.dfa_transitions < materialised.stats.dfa_transitions;
        }
    }
    assert!(
        exited_early_somewhere,
        "no buggy method exercised the early exit"
    );
}
