//! The DFA and ConnectedGraph configurations (rows 16–19 of Table 1/2).

use crate::stacks::at_most_once;
use crate::{inv_sig, Benchmark, Method};
use hat_core::delta::events::ev;
use hat_core::RType;
use hat_lang::builder::*;
use hat_lang::Value;
use hat_logic::{Formula, Sort, Term};
use hat_sfa::Sfa;
use hat_stdlib::{
    graph_delta, graph_model, kvstore_delta, kvstore_model, set_delta, set_model, sorts,
};

/// The determinism invariant `I_DFA(n, c)` of Example 4.5: after connecting a transition
/// out of `(n, c)`, no further transition out of `(n, c)` may be connected until one has
/// been disconnected.
pub fn i_dfa(n: Term, c: Term) -> Sfa {
    let connect_nc = ev(
        "connect",
        &["src", "ch", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), n.clone()),
            Formula::eq(Term::var("ch"), c.clone()),
        ]),
    );
    let disconnect_nc = ev(
        "disconnect",
        &["src", "ch", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), n),
            Formula::eq(Term::var("ch"), c),
        ]),
    );
    Sfa::globally(Sfa::not(Sfa::and(vec![
        connect_nc.clone(),
        Sfa::next(Sfa::until(Sfa::not(disconnect_nc), connect_nc)),
    ])))
}

/// DFA over the graph library.
fn dfa_graph() -> Benchmark {
    let ghosts = vec![
        ("n".to_string(), sorts::node()),
        ("c".to_string(), sorts::char_t()),
    ];
    let inv = i_dfa(Term::var("n"), Term::var("c"));
    let node = RType::base(sorts::node());
    let ch = RType::base(sorts::char_t());
    let methods = vec![
        // Replace the transition out of (s, x): disconnect whatever was there, then connect.
        Method::ok(
            inv_sig(
                "add_transition",
                &ghosts,
                vec![
                    ("s".into(), node.clone()),
                    ("x".into(), ch.clone()),
                    ("old".into(), node.clone()),
                    ("t".into(), node.clone()),
                ],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u1",
                "disconnect",
                vec![Value::var("s"), Value::var("x"), Value::var("old")],
                let_eff(
                    "u2",
                    "connect",
                    vec![Value::var("s"), Value::var("x"), Value::var("t")],
                    ret(Value::unit()),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "del_transition",
                &ghosts,
                vec![
                    ("s".into(), node.clone()),
                    ("x".into(), ch.clone()),
                    ("t".into(), node.clone()),
                ],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "disconnect",
                vec![Value::var("s"), Value::var("x"), Value::var("t")],
                ret(Value::unit()),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_transition",
                &ghosts,
                vec![
                    ("s".into(), node.clone()),
                    ("x".into(), ch.clone()),
                    ("t".into(), node.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "b",
                "has_edge",
                vec![Value::var("s"), Value::var("x"), Value::var("t")],
                ret(Value::var("b")),
            ),
        ),
        Method::ok(
            inv_sig(
                "add_node",
                &ghosts,
                vec![("s".into(), node.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff("u", "add_vertex", vec![Value::var("s")], ret(Value::unit())),
        ),
        Method::buggy(
            inv_sig(
                "add_transition_bad",
                &ghosts,
                vec![
                    ("s".into(), node.clone()),
                    ("x".into(), ch.clone()),
                    ("t".into(), node.clone()),
                    ("t2".into(), node.clone()),
                ],
                RType::base(Sort::Unit),
                &inv,
            ),
            // Connects two transitions out of (s, x) without an intervening disconnect.
            let_eff(
                "u1",
                "connect",
                vec![Value::var("s"), Value::var("x"), Value::var("t")],
                let_eff(
                    "u2",
                    "connect",
                    vec![Value::var("s"), Value::var("x"), Value::var("t2")],
                    ret(Value::unit()),
                ),
            ),
        ),
    ];
    Benchmark {
        adt: "DFA".into(),
        library: "Graph".into(),
        invariant_description: "Determinism of transitions".into(),
        policy: "Two states can have at most one edge for a character".into(),
        ghosts,
        invariant: inv,
        delta: graph_delta(),
        model: graph_model(),
        methods,
        // Feasible since minimised theory conflict cores + incremental enumeration.
        slow: false,
    }
}

/// DFA over the key-value store: a transition's (state, character) pair is encoded as the
/// key; determinism is "each key is written at most once" (stale transitions are removed
/// by a fresh key generation in the client, as in the paper's KVStore encoding).
fn dfa_kvstore() -> Benchmark {
    let ghosts = vec![("n".to_string(), sorts::path())];
    let inv = at_most_once(ev(
        "put",
        &["key", "val"],
        Formula::eq(Term::var("key"), Term::var("n")),
    ));
    let path = RType::base(sorts::path());
    let bytes = RType::base(sorts::bytes());
    let methods = vec![
        Method::ok(
            inv_sig(
                "add_transition",
                &ghosts,
                vec![
                    ("nc".into(), path.clone()),
                    ("target".into(), bytes.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "exists",
                vec![Value::var("nc")],
                ite(
                    Value::var("present"),
                    ret(Value::bool(false)),
                    let_eff(
                        "u",
                        "put",
                        vec![Value::var("nc"), Value::var("target")],
                        ret(Value::bool(true)),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_transition",
                &ghosts,
                vec![("nc".into(), path.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff("b", "exists", vec![Value::var("nc")], ret(Value::var("b"))),
        ),
        Method::ok(
            inv_sig(
                "is_node",
                &ghosts,
                vec![("nc".into(), path.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff("b", "exists", vec![Value::var("nc")], ret(Value::var("b"))),
        ),
        Method::buggy(
            inv_sig(
                "add_transition_bad",
                &ghosts,
                vec![
                    ("nc".into(), path.clone()),
                    ("target".into(), bytes.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "u",
                "put",
                vec![Value::var("nc"), Value::var("target")],
                ret(Value::bool(true)),
            ),
        ),
    ];
    Benchmark {
        adt: "DFA".into(),
        library: "KVStore".into(),
        invariant_description: "Determinism of transitions".into(),
        policy: "Each (state, character) key holds at most one stored transition".into(),
        ghosts,
        invariant: inv,
        delta: kvstore_delta(),
        model: kvstore_model(),
        methods,
        slow: false,
    }
}

/// ConnectedGraph over the Set library: edges are stored as encoded pairs, and no pair is
/// inserted twice.
fn connectedgraph_set() -> Benchmark {
    let ghosts = vec![("el".to_string(), Sort::Int)];
    let inv = at_most_once(ev(
        "insert",
        &["x"],
        Formula::eq(Term::var("x"), Term::var("el")),
    ));
    let int = RType::base(Sort::Int);
    let methods = vec![
        Method::ok(
            inv_sig(
                "add_transition",
                &ghosts,
                vec![("pair".into(), int.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "present",
                "mem",
                vec![Value::var("pair")],
                ite(
                    Value::var("present"),
                    ret(Value::unit()),
                    let_eff("u", "insert", vec![Value::var("pair")], ret(Value::unit())),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_transition",
                &ghosts,
                vec![("pair".into(), int.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff("b", "mem", vec![Value::var("pair")], ret(Value::var("b"))),
        ),
        Method::ok(
            inv_sig(
                "singleton",
                &ghosts,
                vec![("pair".into(), int.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "present",
                "mem",
                vec![Value::var("pair")],
                ite(
                    Value::var("present"),
                    ret(Value::unit()),
                    let_eff("u", "insert", vec![Value::var("pair")], ret(Value::unit())),
                ),
            ),
        ),
        Method::buggy(
            inv_sig(
                "add_transition_bad",
                &ghosts,
                vec![("pair".into(), int)],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff("u", "insert", vec![Value::var("pair")], ret(Value::unit())),
        ),
    ];
    Benchmark {
        adt: "ConnectedGraph".into(),
        library: "Set".into(),
        invariant_description: "Connectivity".into(),
        policy: "The set stores unique (source, target) pairs".into(),
        ghosts,
        invariant: inv,
        delta: set_delta(),
        model: set_model(),
        methods,
        slow: false,
    }
}

/// ConnectedGraph over the graph library: no self loops are ever added, so every edge
/// genuinely connects two distinct vertices.
fn connectedgraph_graph() -> Benchmark {
    let ghosts = vec![("n".to_string(), sorts::node())];
    let self_loop = ev(
        "connect",
        &["src", "ch", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), Term::var("n")),
            Formula::eq(Term::var("dst"), Term::var("n")),
        ]),
    );
    let inv = Sfa::globally(Sfa::not(self_loop));
    let node = RType::base(sorts::node());
    let ch = RType::base(sorts::char_t());
    let methods = vec![
        Method::ok(
            inv_sig(
                "add_transition",
                &ghosts,
                vec![
                    ("s".into(), node.clone()),
                    ("t".into(), node.clone()),
                    ("lbl".into(), ch.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_pure(
                "same",
                "==",
                vec![Value::var("s"), Value::var("t")],
                ite(
                    Value::var("same"),
                    ret(Value::bool(false)),
                    let_eff(
                        "u",
                        "connect",
                        vec![Value::var("s"), Value::var("lbl"), Value::var("t")],
                        ret(Value::bool(true)),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "add_node",
                &ghosts,
                vec![("s".into(), node.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff("u", "add_vertex", vec![Value::var("s")], ret(Value::unit())),
        ),
        Method::ok(
            inv_sig(
                "is_node",
                &ghosts,
                vec![("s".into(), node.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "b",
                "is_vertex",
                vec![Value::var("s")],
                ret(Value::var("b")),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_transition",
                &ghosts,
                vec![
                    ("s".into(), node.clone()),
                    ("t".into(), node.clone()),
                    ("lbl".into(), ch.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "b",
                "has_edge",
                vec![Value::var("s"), Value::var("lbl"), Value::var("t")],
                ret(Value::var("b")),
            ),
        ),
        Method::buggy(
            inv_sig(
                "add_transition_bad",
                &ghosts,
                vec![("s".into(), node.clone()), ("lbl".into(), ch)],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "connect",
                vec![Value::var("s"), Value::var("lbl"), Value::var("s")],
                ret(Value::unit()),
            ),
        ),
    ];
    Benchmark {
        adt: "ConnectedGraph".into(),
        library: "Graph".into(),
        invariant_description: "Connectivity".into(),
        policy: "All edges connect two distinct nodes (no self loops)".into(),
        ghosts,
        invariant: inv,
        delta: graph_delta(),
        model: graph_model(),
        methods,
        slow: false,
    }
}

/// The configurations defined in this module.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        dfa_kvstore(),
        dfa_graph(),
        connectedgraph_set(),
        connectedgraph_graph(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Constant, Interpretation};
    use hat_sfa::{accepts, Event, Trace, TraceModel};

    #[test]
    fn four_configurations() {
        assert_eq!(benchmarks().len(), 4);
    }

    #[test]
    fn dfa_invariant_rejects_nondeterminism() {
        let model = TraceModel::new(Interpretation::new())
            .bind("n", Constant::atom("q0"))
            .bind("c", Constant::atom("a"));
        let inv = i_dfa(Term::var("n"), Term::var("c"));
        let connect = |s: &str, c: &str, t: &str| {
            Event::new(
                "connect",
                vec![Constant::atom(s), Constant::atom(c), Constant::atom(t)],
                Constant::Unit,
            )
        };
        let disconnect = |s: &str, c: &str, t: &str| {
            Event::new(
                "disconnect",
                vec![Constant::atom(s), Constant::atom(c), Constant::atom(t)],
                Constant::Unit,
            )
        };
        let ok = Trace::from_events(vec![
            connect("q0", "a", "q1"),
            disconnect("q0", "a", "q1"),
            connect("q0", "a", "q2"),
        ]);
        assert!(accepts(&model, &ok, &inv).unwrap());
        let bad = Trace::from_events(vec![connect("q0", "a", "q1"), connect("q0", "a", "q2")]);
        assert!(!accepts(&model, &bad, &inv).unwrap());
    }
}
