//! # hat-suite
//!
//! The benchmark suite of the paper's evaluation (Tables 1 and 2): nine ADTs, each
//! implemented against one or more backing stateful libraries, for a total of nineteen
//! (ADT, library) configurations. Every configuration bundles:
//!
//! * the library specification (`Δ`) it type checks against,
//! * its representation invariant as a symbolic automaton (with its ghost variables),
//! * its methods as λᴱ programs together with their HAT signatures, and
//! * an executable library model so the interpreter-based tests can replay methods and
//!   validate Corollary 4.9 (well-typed methods preserve the invariant on every run).
//!
//! Buggy variants (such as `add_bad` from §2 of the paper) are included as negative
//! entries: the checker must reject them.

pub mod filesystem;
pub mod graphs;
pub mod sets;
pub mod stacks;

use hat_core::{Checker, Delta, MethodReport, MethodSig};
use hat_lang::interp::LibraryModel;
use hat_lang::Expr;
use hat_logic::{Ident, Sort};
use hat_sfa::Sfa;

/// One ADT method: its HAT signature, its λᴱ body, and whether the checker is expected to
/// verify it (`false` for the deliberately buggy variants).
#[derive(Debug, Clone)]
pub struct Method {
    /// Signature (ghosts, parameters, pre/postcondition automata).
    pub sig: MethodSig,
    /// Body in monadic normal form.
    pub body: Expr,
    /// Expected verification outcome.
    pub expect_verified: bool,
}

impl Method {
    /// A method expected to verify.
    pub fn ok(sig: MethodSig, body: Expr) -> Self {
        Method {
            sig,
            body,
            expect_verified: true,
        }
    }

    /// A deliberately buggy method expected to be rejected.
    pub fn buggy(sig: MethodSig, body: Expr) -> Self {
        Method {
            sig,
            body,
            expect_verified: false,
        }
    }
}

/// One (ADT, backing library) configuration of Table 1.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// ADT name (e.g. `Stack`; `gen` for configurations produced by `hat-gen`).
    pub adt: String,
    /// Backing library name (e.g. `LinkedList`; a `(seed, index)` recipe for `hat-gen`).
    pub library: String,
    /// The Table 2 description of the representation invariant.
    pub invariant_description: String,
    /// The Table 2 description of the policy on library interactions.
    pub policy: String,
    /// Ghost variables of the representation invariant.
    pub ghosts: Vec<(Ident, Sort)>,
    /// The representation invariant automaton.
    pub invariant: Sfa,
    /// The library specification the ADT is checked against.
    pub delta: Delta,
    /// Executable semantics of the backing library (for interpreter-based validation).
    pub model: LibraryModel,
    /// The ADT methods.
    pub methods: Vec<Method>,
    /// Whether a cold check of the configuration is expensive enough that the benchmark
    /// harness and snapshot tests exclude it by default (only `FileSystem/KVStore`
    /// remains flagged: its *naive* enumeration baseline is infeasible in this
    /// environment, though the incremental pruned pipeline verifies it in ~1.6 min
    /// release).
    pub slow: bool,
}

impl Benchmark {
    /// The size of the invariant formula (the paper's `s_I` column).
    pub fn invariant_size(&self) -> usize {
        self.invariant.literal_count()
    }

    /// Number of ghost variables (the paper's `#Ghost` column).
    pub fn ghost_count(&self) -> usize {
        self.ghosts.len()
    }

    /// Number of methods expected to verify (the paper's `#Method` column counts only the
    /// real API, not the buggy variants).
    pub fn method_count(&self) -> usize {
        self.methods.iter().filter(|m| m.expect_verified).count()
    }

    /// A fresh checker for this configuration.
    pub fn checker(&self) -> Checker {
        Checker::new(self.delta.clone())
    }

    /// Runs the checker on every method, returning the reports in method order.
    pub fn check_all(&self) -> Vec<MethodReport> {
        let mut checker = self.checker();
        self.methods
            .iter()
            .map(|m| {
                checker.check_method(&m.sig, &m.body).unwrap_or_else(|e| {
                    panic!("checking {}::{} failed to run: {e}", self.adt, m.sig.name)
                })
            })
            .collect()
    }
}

/// A standard `[I] t [I]` method signature: the representation invariant as both the
/// pre- and postcondition automaton.
pub fn inv_sig(
    name: &str,
    ghosts: &[(Ident, Sort)],
    params: Vec<(Ident, hat_core::RType)>,
    ret: hat_core::RType,
    invariant: &Sfa,
) -> MethodSig {
    MethodSig {
        name: name.to_string(),
        ghosts: ghosts.to_vec(),
        params,
        pre: invariant.clone(),
        ret,
        post: invariant.clone(),
    }
}

/// Every configuration of Table 1, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = Vec::new();
    v.extend(stacks::benchmarks());
    v.extend(sets::benchmarks());
    v.extend(filesystem::benchmarks());
    v.extend(graphs::benchmarks());
    v
}

/// Looks a configuration up by ADT and library name (case-insensitive).
pub fn find(adt: &str, library: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.adt.eq_ignore_ascii_case(adt) && b.library.eq_ignore_ascii_case(library))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_has_all_nineteen_configurations() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 19, "Table 1 lists 19 (ADT, library) rows");
        let adts: std::collections::BTreeSet<&str> =
            benches.iter().map(|b| b.adt.as_str()).collect();
        assert_eq!(adts.len(), 9, "Table 1 covers 9 distinct ADTs");
    }

    #[test]
    fn every_configuration_is_well_formed() {
        for b in all_benchmarks() {
            assert!(
                !b.methods.is_empty(),
                "{}/{} has no methods",
                b.adt,
                b.library
            );
            assert!(
                b.invariant_size() > 0,
                "{}/{} has a trivial invariant",
                b.adt,
                b.library
            );
            assert!(
                !b.delta.alphabet().is_empty(),
                "{}/{} has an empty operator alphabet",
                b.adt,
                b.library
            );
            // Method bodies must be basically well-typed with respect to the library.
            let basic = b.delta.basic_ctx();
            for m in &b.methods {
                let mut ctx = basic.clone();
                for (g, s) in &m.sig.ghosts {
                    ctx.bind(g.clone(), hat_lang::BasicType::Base(s.clone()));
                }
                for (p, t) in &m.sig.params {
                    ctx.bind(p.clone(), t.erase());
                }
                ctx.check_expr(&m.body).unwrap_or_else(|e| {
                    panic!(
                        "{}/{}::{} is not basically typed: {e}",
                        b.adt, b.library, m.sig.name
                    )
                });
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(find("set", "kvstore").is_some());
        assert!(find("FileSystem", "Tree").is_some());
        assert!(find("nope", "kvstore").is_none());
    }
}
