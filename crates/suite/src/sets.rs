//! Set, LazySet, MinSet and Heap configurations over the Tree, Set, KVStore and MemCell
//! libraries (rows 5–7, 9–13 of Table 1/2).

use crate::stacks::at_most_once;
use crate::{inv_sig, Benchmark, Method};
use hat_core::delta::events::ev;
use hat_core::{HType, RType};
use hat_lang::builder::*;
use hat_lang::{BasicType, Value};
use hat_logic::{Formula, Sort, Term};
use hat_sfa::Sfa;
use hat_stdlib::{
    kvstore_delta, kvstore_model, memcell_delta, memcell_model, set_delta, set_model, sorts,
    tree_delta, tree_model,
};

fn el_ghost() -> Vec<(String, Sort)> {
    vec![("el".to_string(), Sort::Int)]
}

/// Uniqueness invariant over the Set library: `el` is never inserted twice (I_Set / I_LSet).
fn set_uniqueness() -> Sfa {
    at_most_once(ev(
        "insert",
        &["x"],
        Formula::eq(Term::var("x"), Term::var("el")),
    ))
}

/// Uniqueness invariant over the Tree library: `el` is never added (as root or child) twice.
fn tree_uniqueness() -> Sfa {
    let added = Sfa::or(vec![
        ev(
            "addroot",
            &["r"],
            Formula::eq(Term::var("r"), Term::var("el")),
        ),
        ev(
            "addchild",
            &["parent", "child"],
            Formula::eq(Term::var("child"), Term::var("el")),
        ),
    ]);
    at_most_once(added)
}

/// Uniqueness invariant over the KVStore library: the element key `el` is stored at most
/// once, so every stored key is associated with exactly one (hence distinct) value.
fn kv_uniqueness() -> Sfa {
    at_most_once(ev(
        "put",
        &["key", "val"],
        Formula::eq(Term::var("key"), Term::var("el")),
    ))
}

/// The guarded insert over the Set library: insert only when `mem` reports the element
/// absent.
fn guarded_set_insert() -> hat_lang::Expr {
    let_eff(
        "present",
        "mem",
        vec![Value::var("elem")],
        ite(
            Value::var("present"),
            ret(Value::unit()),
            let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit())),
        ),
    )
}

fn set_over_set_methods(inv: &Sfa) -> Vec<Method> {
    let ghosts = el_ghost();
    let int = RType::base(Sort::Int);
    vec![
        Method::ok(
            inv_sig(
                "insert",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Unit),
                inv,
            ),
            guarded_set_insert(),
        ),
        Method::ok(
            inv_sig(
                "mem",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Bool),
                inv,
            ),
            let_eff(
                "present",
                "mem",
                vec![Value::var("elem")],
                ret(Value::var("present")),
            ),
        ),
        Method::ok(
            inv_sig(
                "empty",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Unit),
                inv,
            ),
            ret(Value::unit()),
        ),
        Method::buggy(
            inv_sig(
                "insert_bad",
                &ghosts,
                vec![("elem".into(), int)],
                RType::base(Sort::Unit),
                inv,
            ),
            let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit())),
        ),
    ]
}

/// Set over the Tree library.
fn set_tree() -> Benchmark {
    let inv = tree_uniqueness();
    let ghosts = el_ghost();
    let int = RType::base(Sort::Int);
    let methods = vec![
        Method::ok(
            inv_sig(
                "insert_aux",
                &ghosts,
                vec![("parent".into(), int.clone()), ("elem".into(), int.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "present",
                "contains",
                vec![Value::var("elem")],
                ite(
                    Value::var("present"),
                    ret(Value::unit()),
                    let_eff(
                        "u",
                        "addchild",
                        vec![Value::var("parent"), Value::var("elem")],
                        ret(Value::unit()),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "mem",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "contains",
                vec![Value::var("elem")],
                ret(Value::var("present")),
            ),
        ),
        Method::ok(
            inv_sig(
                "empty",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "present",
                "contains",
                vec![Value::var("elem")],
                ite(
                    Value::var("present"),
                    ret(Value::unit()),
                    let_eff("u", "addroot", vec![Value::var("elem")], ret(Value::unit())),
                ),
            ),
        ),
        Method::buggy(
            inv_sig(
                "insert_bad",
                &ghosts,
                vec![("parent".into(), int.clone()), ("elem".into(), int)],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "addchild",
                vec![Value::var("parent"), Value::var("elem")],
                ret(Value::unit()),
            ),
        ),
    ];
    Benchmark {
        adt: "Set".into(),
        library: "Tree".into(),
        invariant_description: "Unique elements".into(),
        policy: "The underlying tree is a search tree: no element is attached twice".into(),
        ghosts,
        invariant: inv,
        delta: tree_delta(),
        model: tree_model(),
        methods,
        slow: false,
    }
}

/// Set over the key-value store: an element is stored as both key and value, guarded by an
/// `exists` check, so every stored value is distinct.
fn set_kvstore() -> Benchmark {
    let ghosts = el_ghost();
    let inv = kv_uniqueness();
    let path = RType::base(sorts::path());
    let bytes = RType::base(sorts::bytes());
    let methods = vec![
        Method::ok(
            inv_sig(
                "insert",
                &ghosts,
                vec![("key".into(), path.clone()), ("elem".into(), bytes.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            // Store elem under key, but only if the key has never been used: re-using a key
            // could overwrite and duplicate values.
            let_eff(
                "present",
                "exists",
                vec![Value::var("key")],
                ite(
                    Value::var("present"),
                    ret(Value::unit()),
                    let_eff(
                        "u",
                        "put",
                        vec![Value::var("key"), Value::var("elem")],
                        ret(Value::unit()),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "mem",
                &ghosts,
                vec![("key".into(), path.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "exists",
                vec![Value::var("key")],
                ret(Value::var("present")),
            ),
        ),
        Method::ok(
            inv_sig(
                "empty",
                &ghosts,
                vec![("key".into(), path.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            ret(Value::unit()),
        ),
        Method::buggy(
            inv_sig(
                "insert_bad",
                &ghosts,
                vec![("key".into(), path), ("elem".into(), bytes)],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "put",
                vec![Value::var("key"), Value::var("elem")],
                ret(Value::unit()),
            ),
        ),
    ];
    // The element ghost ranges over element keys here.
    let mut b = Benchmark {
        adt: "Set".into(),
        library: "KVStore".into(),
        invariant_description: "Unique elements".into(),
        policy: "Every element key is stored at most once (distinct value per key)".into(),
        ghosts: vec![("el".to_string(), sorts::path())],
        invariant: inv,
        delta: kvstore_delta(),
        model: kvstore_model(),
        methods,
        slow: false,
    };
    // Fix up method ghosts to match the benchmark ghost sort.
    for m in &mut b.methods {
        m.sig.ghosts = vec![("el".to_string(), sorts::path())];
    }
    b
}

/// Heap over the Tree library: the min-heap ordering is maintained by never attaching a
/// child smaller than its parent.
fn heap_tree() -> Benchmark {
    let ghosts: Vec<(String, Sort)> = Vec::new();
    let violating = ev(
        "addchild",
        &["parent", "child"],
        Formula::lt(Term::var("child"), Term::var("parent")),
    );
    let inv = Sfa::globally(Sfa::not(violating));
    let int = RType::base(Sort::Int);
    let methods = vec![
        Method::ok(
            inv_sig(
                "insert_aux",
                &ghosts,
                vec![("parent".into(), int.clone()), ("elem".into(), int.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_pure(
                "ok",
                "<=",
                vec![Value::var("parent"), Value::var("elem")],
                ite(
                    Value::var("ok"),
                    let_eff(
                        "u",
                        "addchild",
                        vec![Value::var("parent"), Value::var("elem")],
                        ret(Value::bool(true)),
                    ),
                    ret(Value::bool(false)),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "minimum",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff("u", "addroot", vec![Value::var("elem")], ret(Value::unit())),
        ),
        Method::ok(
            inv_sig(
                "contains",
                &ghosts,
                vec![("elem".into(), int.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "contains",
                vec![Value::var("elem")],
                ret(Value::var("present")),
            ),
        ),
        Method::buggy(
            inv_sig(
                "insert_bad",
                &ghosts,
                vec![("parent".into(), int.clone()), ("elem".into(), int)],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "addchild",
                vec![Value::var("parent"), Value::var("elem")],
                ret(Value::unit()),
            ),
        ),
    ];
    Benchmark {
        adt: "Heap".into(),
        library: "Tree".into(),
        invariant_description: "Min-heap property".into(),
        policy: "The value of a parent node is at most the value of each of its children".into(),
        ghosts,
        invariant: inv,
        delta: tree_delta(),
        model: tree_model(),
        methods,
        slow: false,
    }
}

/// MinSet over a Set plus a MemCell: every value ever cached in the cell has been inserted
/// into the backing set.
fn minset(library: &'static str) -> Benchmark {
    let ghosts = el_ghost();
    let write_el = ev(
        "write",
        &["x"],
        Formula::eq(Term::var("x"), Term::var("el")),
    );
    let (member_event, delta, model, policy): (Sfa, _, _, &'static str) = if library == "Set" {
        (
            ev("insert", &["x"], Formula::eq(Term::var("x"), Term::var("el"))),
            {
                let mut d = set_delta();
                d.extend(&memcell_delta());
                d
            },
            {
                let mut m = set_model();
                m.extend(&memcell_model());
                m
            },
            "The cached element has been inserted into the set and is no larger than the new element",
        )
    } else {
        (
            ev(
                "put",
                &["key", "val"],
                Formula::eq(Term::var("val"), Term::var("el")),
            ),
            {
                let mut d = kvstore_delta();
                d.extend(&memcell_delta());
                d
            },
            {
                let mut m = kvstore_model();
                m.extend(&memcell_model());
                m
            },
            "The cached element has been put into the store and is no larger than the new element",
        )
    };
    let inv = Sfa::implies(Sfa::eventually(write_el), Sfa::eventually(member_event));
    let int = RType::base(Sort::Int);
    let insert_body = if library == "Set" {
        let_eff(
            "u",
            "insert",
            vec![Value::var("elem")],
            let_eff(
                "m",
                "read",
                vec![Value::unit()],
                let_pure(
                    "smaller",
                    "<",
                    vec![Value::var("elem"), Value::var("m")],
                    ite(
                        Value::var("smaller"),
                        let_eff("u2", "write", vec![Value::var("elem")], ret(Value::unit())),
                        ret(Value::unit()),
                    ),
                ),
            ),
        )
    } else {
        let_eff(
            "u",
            "put",
            vec![Value::var("key"), Value::var("elem")],
            let_eff(
                "m",
                "read",
                vec![Value::unit()],
                let_pure(
                    "smaller",
                    "<",
                    vec![Value::var("elem"), Value::var("m")],
                    ite(
                        Value::var("smaller"),
                        let_eff("u2", "write", vec![Value::var("elem")], ret(Value::unit())),
                        ret(Value::unit()),
                    ),
                ),
            ),
        )
    };
    let mut insert_params = vec![("elem".to_string(), int.clone())];
    if library == "KVStore" {
        insert_params.insert(0, ("key".to_string(), RType::base(sorts::path())));
        // KVStore values are integers for this client.
    }
    let methods = vec![
        Method::ok(
            inv_sig(
                "minset_insert",
                &ghosts,
                insert_params.clone(),
                RType::base(Sort::Unit),
                &inv,
            ),
            insert_body,
        ),
        Method::ok(
            inv_sig(
                "minimum",
                &ghosts,
                vec![("u".into(), RType::base(Sort::Unit))],
                RType::base(Sort::Int),
                &inv,
            ),
            let_eff("m", "read", vec![Value::var("u")], ret(Value::var("m"))),
        ),
        Method::ok(
            inv_sig(
                "minset_mem",
                &ghosts,
                vec![("u".into(), RType::base(Sort::Unit))],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff("b", "is_init", vec![Value::var("u")], ret(Value::var("b"))),
        ),
        Method::buggy(
            inv_sig(
                "minset_insert_bad",
                &ghosts,
                insert_params,
                RType::base(Sort::Unit),
                &inv,
            ),
            // Caches the element without recording it in the backing collection.
            let_eff("u2", "write", vec![Value::var("elem")], ret(Value::unit())),
        ),
    ];
    let mut delta = delta;
    if library == "KVStore" {
        // This client stores integers as values.
        if let Some(sig) = delta.eff_ops.get_mut("put") {
            sig.params[1].1 = RType::base(Sort::Int);
        }
    }
    Benchmark {
        adt: "MinSet".into(),
        library: library.into(),
        invariant_description: "Uniqueness and minimality of the cached minimum".into(),
        policy: policy.into(),
        ghosts,
        invariant: inv,
        delta,
        model,
        methods,
        // Feasible (for both backing libraries) since minimised theory conflict cores +
        // incremental enumeration.
        slow: false,
    }
}

/// LazySet: a thunk-based insert. The thunk type is `unit → [I] unit [I]`.
fn lazyset(library: &'static str) -> Benchmark {
    let ghosts = el_ghost();
    let (inv, delta, model): (Sfa, _, _) = match library {
        "Tree" => (tree_uniqueness(), tree_delta(), tree_model()),
        "Set" => (set_uniqueness(), set_delta(), set_model()),
        _ => (kv_uniqueness(), kvstore_delta(), kvstore_model()),
    };
    let int = RType::base(Sort::Int);
    let unit = RType::base(Sort::Unit);
    let thunk_ty = RType::arrow(
        "u",
        unit.clone(),
        HType::hoare(inv.clone(), unit.clone(), inv.clone()),
    );
    // force: run the delayed insertions.
    let force = Method::ok(
        inv_sig(
            "force",
            &ghosts,
            vec![("thunk".into(), thunk_ty.clone())],
            unit.clone(),
            &inv,
        ),
        let_app(
            "r",
            Value::var("thunk"),
            Value::unit(),
            ret(Value::var("r")),
        ),
    );
    // new_thunk: the empty delayed computation, returned as a function value.
    let new_thunk = Method::ok(
        inv_sig(
            "new_thunk",
            &ghosts,
            vec![("seed".into(), int.clone())],
            thunk_ty.clone(),
            &inv,
        ),
        ret(lambda("u", BasicType::unit(), ret(Value::unit()))),
    );
    // lazy_insert: delay a guarded insert of `elem`.
    let insert_body: hat_lang::Expr = match library {
        "Tree" => let_eff(
            "present",
            "contains",
            vec![Value::var("elem")],
            ite(
                Value::var("present"),
                ret(Value::unit()),
                let_eff(
                    "u2",
                    "addchild",
                    vec![Value::var("parent"), Value::var("elem")],
                    ret(Value::unit()),
                ),
            ),
        ),
        "Set" => guarded_set_insert(),
        _ => let_eff(
            "present",
            "exists",
            vec![Value::var("key")],
            ite(
                Value::var("present"),
                ret(Value::unit()),
                let_eff(
                    "u2",
                    "put",
                    vec![Value::var("key"), Value::var("elem")],
                    ret(Value::unit()),
                ),
            ),
        ),
    };
    let mut lazy_params: Vec<(String, RType)> = vec![("elem".to_string(), int.clone())];
    if library == "Tree" {
        lazy_params.push(("parent".to_string(), int.clone()));
    }
    if library == "KVStore" {
        lazy_params.insert(0, ("key".to_string(), RType::base(sorts::path())));
    }
    let lazy_insert = Method::ok(
        inv_sig(
            "lazy_insert",
            &ghosts,
            lazy_params.clone(),
            thunk_ty.clone(),
            &inv,
        ),
        ret(lambda("u", BasicType::unit(), insert_body.clone())),
    );
    let lazy_mem_body: hat_lang::Expr = match library {
        "Tree" => let_eff(
            "b",
            "contains",
            vec![Value::var("elem")],
            ret(Value::var("b")),
        ),
        "Set" => let_eff("b", "mem", vec![Value::var("elem")], ret(Value::var("b"))),
        _ => let_eff("b", "exists", vec![Value::var("key")], ret(Value::var("b"))),
    };
    let lazy_mem = Method::ok(
        inv_sig(
            "lazy_mem",
            &ghosts,
            lazy_params.clone(),
            RType::base(Sort::Bool),
            &inv,
        ),
        lazy_mem_body,
    );
    let bad = Method::buggy(
        inv_sig("lazy_insert_bad", &ghosts, lazy_params, thunk_ty, &inv),
        ret(lambda(
            "u",
            BasicType::unit(),
            match library {
                "Tree" => let_eff(
                    "u2",
                    "addchild",
                    vec![Value::var("parent"), Value::var("elem")],
                    ret(Value::unit()),
                ),
                "Set" => let_eff("u2", "insert", vec![Value::var("elem")], ret(Value::unit())),
                _ => let_eff(
                    "u2",
                    "put",
                    vec![Value::var("key"), Value::var("elem")],
                    ret(Value::unit()),
                ),
            },
        )),
    );
    let mut delta = delta;
    if library == "KVStore" {
        if let Some(sig) = delta.eff_ops.get_mut("put") {
            sig.params[1].1 = RType::base(Sort::Int);
        }
    }
    let ghosts_final = if library == "KVStore" {
        vec![("el".to_string(), sorts::path())]
    } else {
        ghosts
    };
    let mut methods = vec![lazy_insert, lazy_mem, force, new_thunk, bad];
    for m in &mut methods {
        m.sig.ghosts = ghosts_final.clone();
    }
    Benchmark {
        adt: "LazySet".into(),
        library: library.into(),
        invariant_description: "Uniqueness of elements".into(),
        policy: match library {
            "Tree" => "The underlying tree never receives the same element twice",
            "Set" => "An element is never inserted twice",
            _ => "Every key is associated with a distinct value",
        }
        .into(),
        ghosts: ghosts_final,
        invariant: inv,
        delta,
        model,
        methods,
        slow: false,
    }
}

/// The configurations defined in this module.
pub fn benchmarks() -> Vec<Benchmark> {
    let mut set_over_set = Benchmark {
        adt: "Set".into(),
        library: "Set".into(),
        invariant_description: "Unique elements".into(),
        policy: "An element is never inserted twice".into(),
        ghosts: el_ghost(),
        invariant: set_uniqueness(),
        delta: set_delta(),
        model: set_model(),
        methods: Vec::new(),
        slow: false,
    };
    set_over_set.methods = set_over_set_methods(&set_over_set.invariant);
    // Table 1 has no Set/Set row; the Set/Set configuration is reused as the backing
    // implementation of LazySet/Set and MinSet/Set. We therefore do not emit it here.
    let _ = set_over_set;

    vec![
        set_tree(),
        set_kvstore(),
        heap_tree(),
        minset("Set"),
        minset("KVStore"),
        lazyset("Tree"),
        lazyset("Set"),
        lazyset("KVStore"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_configurations() {
        assert_eq!(benchmarks().len(), 8);
    }

    #[test]
    fn heap_tree_ordering_reasoning() {
        let b = heap_tree();
        let reports = b.check_all();
        for (m, r) in b.methods.iter().zip(&reports) {
            assert_eq!(
                r.verified, m.expect_verified,
                "{}: expected {}, got {} ({:?})",
                m.sig.name, m.expect_verified, r.verified, r.failures
            );
        }
    }
}
