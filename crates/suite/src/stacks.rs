//! Stack, Queue and Heap configurations backed by the LinkedList, KVStore and Graph
//! libraries (rows 1–4, 8 of Table 1/2).

use crate::{inv_sig, Benchmark, Method};
use hat_core::delta::events::ev;
use hat_core::RType;
use hat_lang::builder::*;
use hat_lang::Value;
use hat_logic::{Formula, Sort, Term};
use hat_sfa::Sfa;
use hat_stdlib::{
    graph_delta, graph_model, kvstore_delta, kvstore_model, linkedlist_delta, linkedlist_model,
    sorts,
};

/// "An event matching `e` happens at most once": `□(e ⇒ ◯¬♦e)`.
pub fn at_most_once(e: Sfa) -> Sfa {
    Sfa::globally(Sfa::implies(
        e.clone(),
        Sfa::next(Sfa::not(Sfa::eventually(e))),
    ))
}

fn node_ghost() -> Vec<(String, Sort)> {
    vec![("n".to_string(), sorts::node())]
}

/// Stack over the linked-list library: the next pointer of a cell is set at most once,
/// which rules out cycles among the cells the stack has allocated.
fn stack_linkedlist() -> Benchmark {
    let setnext_n = ev(
        "setnext",
        &["src", "dst"],
        Formula::eq(Term::var("src"), Term::var("n")),
    );
    let inv = at_most_once(setnext_n);
    let ghosts = node_ghost();
    let node = RType::base(sorts::node());
    let methods = vec![
        // cons top elem: allocate a node and link it in front of the current top, but only
        // if the fresh node has never been linked before.
        Method::ok(
            inv_sig(
                "cons",
                &ghosts,
                vec![
                    ("top".into(), node.clone()),
                    ("elem".into(), RType::base(Sort::Int)),
                ],
                node.clone(),
                &inv,
            ),
            let_eff(
                "nd",
                "newnode",
                vec![Value::var("elem")],
                let_eff(
                    "linked",
                    "hasnext",
                    vec![Value::var("nd")],
                    ite(
                        Value::var("linked"),
                        ret(Value::var("nd")),
                        let_eff(
                            "u",
                            "setnext",
                            vec![Value::var("nd"), Value::var("top")],
                            ret(Value::var("nd")),
                        ),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_empty",
                &ghosts,
                vec![("top".into(), node.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "b",
                "hasnext",
                vec![Value::var("top")],
                ret(Value::var("b")),
            ),
        ),
        Method::ok(
            inv_sig(
                "empty",
                &ghosts,
                vec![("elem".into(), RType::base(Sort::Int))],
                node.clone(),
                &inv,
            ),
            let_eff(
                "nd",
                "newnode",
                vec![Value::var("elem")],
                ret(Value::var("nd")),
            ),
        ),
        // Buggy cons: re-link the node unconditionally (may set the same cell's next twice).
        Method::buggy(
            inv_sig(
                "cons_bad",
                &ghosts,
                vec![("top".into(), node.clone()), ("nd".into(), node.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "setnext",
                vec![Value::var("nd"), Value::var("top")],
                let_eff(
                    "u2",
                    "setnext",
                    vec![Value::var("nd"), Value::var("top")],
                    ret(Value::unit()),
                ),
            ),
        ),
    ];
    Benchmark {
        adt: "Stack".into(),
        library: "LinkedList".into(),
        invariant_description: "LIFO-property".into(),
        policy: "The addresses that store elements are unique (no cell is re-linked)".into(),
        ghosts,
        invariant: inv,
        delta: linkedlist_delta(),
        model: linkedlist_model(),
        methods,
        slow: false,
    }
}

/// Stack over the key-value store: cells are store keys and each key is written at most
/// once, so the chain of cells can never become circular.
fn stack_kvstore() -> Benchmark {
    let ghosts = vec![("p".to_string(), sorts::path())];
    let put_p = ev(
        "put",
        &["key", "val"],
        Formula::eq(Term::var("key"), Term::var("p")),
    );
    let inv = at_most_once(put_p);
    let path = RType::base(sorts::path());
    let bytes = RType::base(sorts::bytes());
    let guarded_put = |name: &str| {
        Method::ok(
            inv_sig(
                name,
                &ghosts,
                vec![
                    ("cell".into(), path.clone()),
                    ("payload".into(), bytes.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "exists",
                vec![Value::var("cell")],
                ite(
                    Value::var("present"),
                    ret(Value::bool(false)),
                    let_eff(
                        "u",
                        "put",
                        vec![Value::var("cell"), Value::var("payload")],
                        ret(Value::bool(true)),
                    ),
                ),
            ),
        )
    };
    let methods = vec![
        guarded_put("cons"),
        guarded_put("concat_aux"),
        Method::ok(
            inv_sig(
                "head",
                &ghosts,
                vec![
                    ("cell".into(), path.clone()),
                    ("default".into(), bytes.clone()),
                ],
                bytes.clone(),
                &inv,
            ),
            // `get` may only be called when the cell is known to exist.
            let_eff(
                "present",
                "exists",
                vec![Value::var("cell")],
                ite(
                    Value::var("present"),
                    let_eff("v", "get", vec![Value::var("cell")], ret(Value::var("v"))),
                    ret(Value::var("default")),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_empty",
                &ghosts,
                vec![("cell".into(), path.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "exists",
                vec![Value::var("cell")],
                ret(Value::var("present")),
            ),
        ),
        Method::buggy(
            inv_sig(
                "cons_bad",
                &ghosts,
                vec![
                    ("cell".into(), path.clone()),
                    ("payload".into(), bytes.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "u",
                "put",
                vec![Value::var("cell"), Value::var("payload")],
                ret(Value::bool(true)),
            ),
        ),
    ];
    Benchmark {
        adt: "Stack".into(),
        library: "KVStore".into(),
        invariant_description: "LIFO-property".into(),
        policy: "Not a circular linked list (each cell key is written at most once)".into(),
        ghosts,
        invariant: inv,
        delta: kvstore_delta(),
        model: kvstore_model(),
        methods,
        slow: false,
    }
}

/// Queue over the linked list: symmetric to the stack, but the uniqueness constraint is on
/// the *target* of `setnext` (a cell is enqueued behind at most one predecessor).
fn queue_linkedlist() -> Benchmark {
    let ghosts = node_ghost();
    let target_n = ev(
        "setnext",
        &["src", "dst"],
        Formula::eq(Term::var("dst"), Term::var("n")),
    );
    let inv = at_most_once(target_n);
    let node = RType::base(sorts::node());
    let methods = vec![
        Method::ok(
            inv_sig(
                "snoc",
                &ghosts,
                vec![
                    ("tail".into(), node.clone()),
                    ("elem".into(), RType::base(Sort::Int)),
                ],
                node.clone(),
                &inv,
            ),
            // Allocate the new last cell and hang it behind the current tail only when the
            // tail has no successor yet.
            let_eff(
                "nd",
                "newnode",
                vec![Value::var("elem")],
                let_eff(
                    "linked",
                    "hasnext",
                    vec![Value::var("tail")],
                    ite(
                        Value::var("linked"),
                        ret(Value::var("nd")),
                        let_eff(
                            "u",
                            "setnext",
                            vec![Value::var("tail"), Value::var("nd")],
                            ret(Value::var("nd")),
                        ),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_empty",
                &ghosts,
                vec![("front".into(), node.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "b",
                "hasnext",
                vec![Value::var("front")],
                ret(Value::var("b")),
            ),
        ),
        Method::ok(
            inv_sig(
                "empty",
                &ghosts,
                vec![("elem".into(), RType::base(Sort::Int))],
                node.clone(),
                &inv,
            ),
            let_eff(
                "nd",
                "newnode",
                vec![Value::var("elem")],
                ret(Value::var("nd")),
            ),
        ),
        Method::buggy(
            inv_sig(
                "snoc_bad",
                &ghosts,
                vec![("tail".into(), node.clone()), ("nd".into(), node.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "setnext",
                vec![Value::var("tail"), Value::var("nd")],
                let_eff(
                    "u2",
                    "setnext",
                    vec![Value::var("tail"), Value::var("nd")],
                    ret(Value::unit()),
                ),
            ),
        ),
    ];
    Benchmark {
        adt: "Queue".into(),
        library: "LinkedList".into(),
        invariant_description: "FIFO-property".into(),
        policy: "Not a circular linked list (each cell is enqueued behind at most once)".into(),
        ghosts,
        invariant: inv,
        delta: linkedlist_delta(),
        model: linkedlist_model(),
        methods,
        slow: false,
    }
}

/// Queue over the graph library: vertices are queue cells and edges the "next" relation.
/// The invariant forbids self loops and gives every vertex out-degree at most one.
fn queue_graph() -> Benchmark {
    let ghosts = node_ghost();
    let self_loop = ev(
        "connect",
        &["src", "ch", "dst"],
        Formula::and(vec![
            Formula::eq(Term::var("src"), Term::var("n")),
            Formula::eq(Term::var("dst"), Term::var("n")),
        ]),
    );
    let out_edge = ev(
        "connect",
        &["src", "ch", "dst"],
        Formula::eq(Term::var("src"), Term::var("n")),
    );
    let inv = Sfa::and(vec![
        Sfa::globally(Sfa::not(self_loop)),
        at_most_once(out_edge),
    ]);
    let node = RType::base(sorts::node());
    let ch = RType::base(sorts::char_t());
    let methods = vec![
        Method::ok(
            inv_sig(
                "snoc",
                &ghosts,
                vec![
                    ("tail".into(), node.clone()),
                    ("fresh".into(), node.clone()),
                    ("lbl".into(), ch.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            // Only link tail → fresh when the two cells differ and tail has no successor.
            // The guard must cover *every* out-edge of tail: `at_most_once(out_edge)`
            // quantifies over all connects with `src = n`, so guarding on the single edge
            // `has_edge(tail, lbl, fresh)` was unsound (the checker rightly rejected it —
            // tail could already point elsewhere). `has_succ` observes the any-successor
            // history through the graph model.
            let_pure(
                "same",
                "==",
                vec![Value::var("tail"), Value::var("fresh")],
                ite(
                    Value::var("same"),
                    ret(Value::bool(false)),
                    let_eff(
                        "linked",
                        "has_succ",
                        vec![Value::var("tail")],
                        ite(
                            Value::var("linked"),
                            ret(Value::bool(false)),
                            let_eff(
                                "u",
                                "connect",
                                vec![Value::var("tail"), Value::var("lbl"), Value::var("fresh")],
                                ret(Value::bool(true)),
                            ),
                        ),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "is_empty",
                &ghosts,
                vec![
                    ("front".into(), node.clone()),
                    ("next".into(), node.clone()),
                    ("lbl".into(), ch.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "b",
                "has_edge",
                vec![Value::var("front"), Value::var("lbl"), Value::var("next")],
                ret(Value::var("b")),
            ),
        ),
        Method::ok(
            inv_sig(
                "empty",
                &ghosts,
                vec![("cell".into(), node.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff(
                "u",
                "add_vertex",
                vec![Value::var("cell")],
                ret(Value::unit()),
            ),
        ),
        Method::buggy(
            inv_sig(
                "snoc_bad",
                &ghosts,
                vec![("tail".into(), node.clone()), ("lbl".into(), ch.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            // Self loop: connects a cell to itself.
            let_eff(
                "u",
                "connect",
                vec![Value::var("tail"), Value::var("lbl"), Value::var("tail")],
                ret(Value::unit()),
            ),
        ),
    ];
    Benchmark {
        adt: "Queue".into(),
        library: "Graph".into(),
        invariant_description: "FIFO-property".into(),
        policy: "No self-loops; out-degree of every node is at most 1".into(),
        ghosts,
        invariant: inv,
        delta: graph_delta(),
        model: graph_model(),
        methods,
        // Feasible since minimised theory conflict cores + incremental enumeration
        // (formerly tens of minutes, now well under a second cold).
        slow: false,
    }
}

/// Heap over the linked list: the cells form a non-circular chain (next pointer written at
/// most once), mirroring the Stack configuration with a heap-flavoured API.
fn heap_linkedlist() -> Benchmark {
    let mut b = stack_linkedlist();
    b.adt = "Heap".into();
    b.invariant_description = "Min-heap property".into();
    b.policy = "Not a circular linked list; the elements are kept sorted".into();
    // Rename the API to the heap vocabulary.
    for (m, name) in b
        .methods
        .iter_mut()
        .zip(["insert", "contains", "empty", "insert_bad"])
    {
        m.sig.name = name.to_string();
    }
    b
}

/// The configurations defined in this module.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        stack_linkedlist(),
        stack_kvstore(),
        queue_linkedlist(),
        queue_graph(),
        heap_linkedlist(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_configurations() {
        assert_eq!(benchmarks().len(), 5);
    }

    #[test]
    fn stack_kvstore_cons_verifies_and_cons_bad_fails() {
        let b = stack_kvstore();
        let mut checker = b.checker();
        let cons = &b.methods[0];
        let report = checker.check_method(&cons.sig, &cons.body).unwrap();
        assert!(report.verified, "{:?}", report.failures);
        let bad = b.methods.iter().find(|m| !m.expect_verified).unwrap();
        let report = checker.check_method(&bad.sig, &bad.body).unwrap();
        assert!(!report.verified);
    }
}
