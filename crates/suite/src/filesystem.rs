//! The FileSystem configurations (rows 14–15 of Table 1/2) — the motivating example of the
//! paper (§2): a Unix-like directory hierarchy layered over a tree or key-value store.

use crate::{inv_sig, Benchmark, Method};
use hat_core::delta::events::ev;
use hat_core::{PureOpSig, RType};
use hat_lang::builder::*;
use hat_lang::Value;
use hat_logic::{Formula, Sort, Term};
use hat_sfa::Sfa;
use hat_stdlib::{kvstore_delta, kvstore_model, sorts, tree_delta, tree_model};

/// `P_isDir(p)` from §2: `p` was stored as a directory and not subsequently deleted or
/// overwritten by a file.
fn p_is_dir(p: Term) -> Sfa {
    Sfa::eventually(Sfa::and(vec![
        ev(
            "put",
            &["key", "val"],
            Formula::and(vec![
                Formula::eq(Term::var("key"), p.clone()),
                Formula::pred("isDir", vec![Term::var("val")]),
            ]),
        ),
        Sfa::next(Sfa::globally(Sfa::not(ev(
            "put",
            &["key", "val"],
            Formula::and(vec![
                Formula::eq(Term::var("key"), p),
                Formula::or(vec![
                    Formula::pred("isDel", vec![Term::var("val")]),
                    Formula::pred("isFile", vec![Term::var("val")]),
                ]),
            ]),
        )))),
    ]))
}

/// `P_exists(p)`: some put of key `p`.
fn p_exists(p: Term) -> Sfa {
    Sfa::eventually(ev("put", &["key", "val"], Formula::eq(Term::var("key"), p)))
}

/// The representation invariant `I_FS(p)` of §2, Example 2.2: either `p` is the root, or if
/// `p` is stored in the file system then its parent is stored as a (non-deleted) directory.
pub fn i_fs(p: Term) -> Sfa {
    let parent = Term::app("parent", vec![p.clone()]);
    Sfa::or(vec![
        Sfa::globally(Sfa::guard(Formula::pred("isRoot", vec![p.clone()]))),
        Sfa::implies(p_exists(p), p_is_dir(parent)),
    ])
}

/// FileSystem over the key-value store (Fig. 1): keys are paths, values are byte blobs.
fn filesystem_kvstore() -> Benchmark {
    let ghosts = vec![("p".to_string(), sorts::path())];
    let inv = i_fs(Term::var("p"));
    let path = RType::base(sorts::path());
    let bytes = RType::base(sorts::bytes());

    // add (Fig. 1): insert a file/directory only when it is absent and its parent is a
    // stored directory, updating the parent's child list.
    let add_body = let_eff(
        "present",
        "exists",
        vec![Value::var("path")],
        ite(
            Value::var("present"),
            ret(Value::bool(false)),
            let_pure(
                "pp",
                "parent",
                vec![Value::var("path")],
                let_eff(
                    "pp_present",
                    "exists",
                    vec![Value::var("pp")],
                    ite(
                        Value::var("pp_present"),
                        let_eff(
                            "pbytes",
                            "get",
                            vec![Value::var("pp")],
                            let_pure(
                                "pdir",
                                "isDir",
                                vec![Value::var("pbytes")],
                                ite(
                                    Value::var("pdir"),
                                    let_pure(
                                        "dir_payload",
                                        "addChild",
                                        vec![Value::var("pbytes"), Value::var("path")],
                                        let_eff(
                                            "u1",
                                            "put",
                                            vec![Value::var("path"), Value::var("dir_payload")],
                                            let_eff(
                                                "u2",
                                                "put",
                                                vec![Value::var("pp"), Value::var("dir_payload")],
                                                ret(Value::bool(true)),
                                            ),
                                        ),
                                    ),
                                    ret(Value::bool(false)),
                                ),
                            ),
                        ),
                        ret(Value::bool(false)),
                    ),
                ),
            ),
        ),
    );

    // init: store the root directory.
    let init_body = let_pure(
        "root_is_root",
        "isRoot",
        vec![Value::var("root")],
        ite(
            Value::var("root_is_root"),
            let_eff(
                "u",
                "put",
                vec![Value::var("root"), Value::var("root_bytes")],
                ret(Value::unit()),
            ),
            ret(Value::unit()),
        ),
    );

    // The naïve add of Example 2.1, which registers a path unconditionally.
    let add_bad_body = let_eff(
        "u",
        "put",
        vec![Value::var("path"), Value::var("payload")],
        ret(Value::bool(true)),
    );

    let methods = vec![
        Method::ok(
            inv_sig(
                "add",
                &ghosts,
                vec![
                    ("path".into(), path.clone()),
                    ("payload".into(), bytes.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            add_body,
        ),
        Method::ok(
            inv_sig(
                "init",
                &ghosts,
                vec![
                    ("root".into(), path.clone()),
                    (
                        "root_bytes".into(),
                        RType::refined(
                            sorts::bytes(),
                            Formula::pred("isDir", vec![Term::var(hat_core::NU)]),
                        ),
                    ),
                ],
                RType::base(Sort::Unit),
                &inv,
            ),
            init_body,
        ),
        Method::ok(
            inv_sig(
                "exists_path",
                &ghosts,
                vec![("path".into(), path.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "exists",
                vec![Value::var("path")],
                ret(Value::var("present")),
            ),
        ),
        Method::buggy(
            inv_sig(
                "add_bad",
                &ghosts,
                vec![
                    ("path".into(), path.clone()),
                    ("payload".into(), bytes.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            add_bad_body,
        ),
    ];
    Benchmark {
        adt: "FileSystem".into(),
        library: "KVStore".into(),
        invariant_description: "Unix-like path policy".into(),
        policy: "Any non-root path stored as a key must have its parent stored as a non-deleted directory".into(),
        ghosts,
        invariant: inv,
        delta: kvstore_delta(),
        model: kvstore_model(),
        methods,
        // ~1.6 min cold in release with the pruned incremental pipeline (PR 3), but the
        // naive-enumeration baseline is still >84 CPU-min, which would dominate
        // `table1 --full` and the debug test budget.
        slow: true,
    }
}

/// FileSystem over the tree library: paths are attached below their parent path, so the
/// parent/child structure is maintained by construction and the remaining obligation is
/// that children are only attached below their own parent.
fn filesystem_tree() -> Benchmark {
    let ghosts = vec![("p".to_string(), Sort::Int)];
    // □ ¬⟨addchild parent child | parent ≠ parent(child)⟩ for the ghost path p (as child).
    let violating = ev(
        "addchild",
        &["par", "child"],
        Formula::and(vec![
            Formula::eq(Term::var("child"), Term::var("p")),
            Formula::not(Formula::eq(
                Term::var("par"),
                Term::app("parentOf", vec![Term::var("p")]),
            )),
        ]),
    );
    let inv = Sfa::globally(Sfa::not(violating));
    let int = RType::base(Sort::Int);
    let mut delta = tree_delta();
    delta.declare_pure(
        "parentOf",
        PureOpSig {
            params: vec![("x".into(), int.clone())],
            ret: RType::singleton(Sort::Int, Term::app("parentOf", vec![Term::var("x")])),
        },
    );
    delta
        .axioms
        .declare_func("parentOf", vec![Sort::Int], Sort::Int);
    let methods = vec![
        Method::ok(
            inv_sig(
                "add",
                &ghosts,
                vec![("path".into(), int.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_pure(
                "pp",
                "parentOf",
                vec![Value::var("path")],
                let_eff(
                    "pp_present",
                    "contains",
                    vec![Value::var("pp")],
                    ite(
                        Value::var("pp_present"),
                        let_eff(
                            "u",
                            "addchild",
                            vec![Value::var("pp"), Value::var("path")],
                            ret(Value::bool(true)),
                        ),
                        ret(Value::bool(false)),
                    ),
                ),
            ),
        ),
        Method::ok(
            inv_sig(
                "init",
                &ghosts,
                vec![("root".into(), int.clone())],
                RType::base(Sort::Unit),
                &inv,
            ),
            let_eff("u", "addroot", vec![Value::var("root")], ret(Value::unit())),
        ),
        Method::ok(
            inv_sig(
                "exists_path",
                &ghosts,
                vec![("path".into(), int.clone())],
                RType::base(Sort::Bool),
                &inv,
            ),
            let_eff(
                "present",
                "contains",
                vec![Value::var("path")],
                ret(Value::var("present")),
            ),
        ),
        Method::buggy(
            inv_sig(
                "add_bad",
                &ghosts,
                vec![
                    ("path".into(), int.clone()),
                    ("somewhere".into(), int.clone()),
                ],
                RType::base(Sort::Bool),
                &inv,
            ),
            // Attaches the path below an arbitrary node instead of its parent.
            let_eff(
                "u",
                "addchild",
                vec![Value::var("somewhere"), Value::var("path")],
                ret(Value::bool(true)),
            ),
        ),
    ];
    Benchmark {
        adt: "FileSystem".into(),
        library: "Tree".into(),
        invariant_description: "Unix-like path policy".into(),
        policy: "A parent node stores a path that is a prefix of its children's paths".into(),
        ghosts,
        invariant: inv,
        delta,
        model: tree_model(),
        methods,
        slow: false,
    }
}

/// The configurations defined in this module.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![filesystem_tree(), filesystem_kvstore()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_logic::{Constant, Interpretation};
    use hat_sfa::{accepts, Event, Trace, TraceModel};

    #[test]
    fn the_invariant_distinguishes_the_paper_traces() {
        // α1 (add_bad) violates I_FS for p = "/a/b.txt"; α2 (correct add) satisfies it.
        let model =
            TraceModel::new(Interpretation::filesystem()).bind("p", Constant::atom("/a/b.txt"));
        let inv = i_fs(Term::var("p"));
        let put = |k: &str, v: &str| {
            Event::new(
                "put",
                vec![Constant::atom(k), Constant::atom(v)],
                Constant::Unit,
            )
        };
        let alpha1 = Trace::from_events(vec![put("/", "dir:root"), put("/a/b.txt", "file:1")]);
        assert!(!accepts(&model, &alpha1, &inv).unwrap());
        let alpha2 = Trace::from_events(vec![
            put("/", "dir:root"),
            Event::new(
                "exists",
                vec![Constant::atom("/a/b.txt")],
                Constant::Bool(false),
            ),
            Event::new("exists", vec![Constant::atom("/a")], Constant::Bool(false)),
        ]);
        assert!(accepts(&model, &alpha2, &inv).unwrap());
    }

    #[test]
    fn two_configurations() {
        assert_eq!(benchmarks().len(), 2);
    }
}
