//! Quickstart: define a tiny stateful Set client, state its representation invariant as a
//! symbolic automaton, and verify it with the HAT type checker.
//!
//! Run with `cargo run -p marple --example quickstart`.

use hat_core::delta::events::ev;
use hat_core::{Checker, MethodSig, RType};
use hat_lang::builder::*;
use hat_lang::Value;
use hat_logic::{Formula, Sort, Term};
use hat_sfa::Sfa;
use hat_stdlib::set_delta;

fn main() {
    // I_Set(el): once `el` has been inserted it is never inserted again.
    let ins_el = || {
        ev(
            "insert",
            &["x"],
            Formula::eq(Term::var("x"), Term::var("el")),
        )
    };
    let invariant = Sfa::globally(Sfa::implies(
        ins_el(),
        Sfa::next(Sfa::not(Sfa::eventually(ins_el()))),
    ));

    // insert elem = if mem elem then () else insert elem
    let body = let_eff(
        "present",
        "mem",
        vec![Value::var("elem")],
        ite(
            Value::var("present"),
            ret(Value::unit()),
            let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit())),
        ),
    );

    let sig = MethodSig {
        name: "insert".into(),
        ghosts: vec![("el".into(), Sort::Int)],
        params: vec![("elem".into(), RType::base(Sort::Int))],
        pre: invariant.clone(),
        ret: RType::base(Sort::Unit),
        post: invariant.clone(),
    };

    let mut checker = Checker::new(set_delta());
    let report = checker.check_method(&sig, &body).expect("checking runs");
    println!("insert verified: {}", report.verified);
    println!(
        "  SMT queries: {}, FA inclusions: {}, avg FA size: {:.1}, time: {:.2}s",
        report.stats.sat_queries,
        report.stats.fa_inclusions,
        report.stats.avg_fa_size,
        report.stats.total_time.as_secs_f64()
    );

    // The unguarded insert is rejected.
    let bad = let_eff("u", "insert", vec![Value::var("elem")], ret(Value::unit()));
    let report = checker.check_method(&sig, &bad).expect("checking runs");
    println!(
        "unguarded insert verified: {} (expected false)",
        report.verified
    );
    for f in &report.failures {
        println!("  reason: {f}");
    }
}
