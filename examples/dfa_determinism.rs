//! The DFA benchmark (paper Example 4.5): a deterministic finite automaton stored in a
//! stateful graph library. The invariant forbids two outgoing transitions on the same
//! character without an intervening disconnect.
//!
//! Run with `cargo run --release -p marple --example dfa_determinism`.

fn main() {
    let bench = hat_suite::find("DFA", "Graph").expect("benchmark exists");
    println!("invariant size (literals): {}", bench.invariant_size());
    let mut checker = bench.checker();
    for m in &bench.methods {
        let report = checker.check_method(&m.sig, &m.body).unwrap();
        println!(
            "{:<22} verified={} (expected {}) — branches={}, apps={}, #SAT={}, #FA⊆={}",
            m.sig.name,
            report.verified,
            m.expect_verified,
            report.branches,
            report.apps,
            report.stats.sat_queries,
            report.stats.fa_inclusions
        );
        if report.verified != m.expect_verified {
            for f in &report.failures {
                println!("    {f}");
            }
        }
    }
}
