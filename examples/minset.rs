//! The MinSet ADT (paper Example 4.3): a set that caches its minimum element in a
//! persistent memory cell. The representation invariant ties the cell's content to the
//! insertion history of the backing set.
//!
//! Run with `cargo run --release -p marple --example minset`.

use hat_lang::interp::{Env, Interpreter, RtValue};
use hat_logic::{Constant, Interpretation};
use hat_sfa::{accepts, Trace, TraceModel};

fn main() {
    let bench = hat_suite::find("MinSet", "Set").expect("benchmark exists");

    // Replay a few insertions through the interpreter and check the invariant dynamically
    // for every choice of the ghost element.
    let interp = Interpreter::new(bench.model.clone(), Interpretation::new());
    let insert = &bench
        .methods
        .iter()
        .find(|m| m.sig.name == "minset_insert")
        .unwrap()
        .body;
    let mut trace = Trace::from_events(vec![hat_sfa::Event::new(
        "write",
        vec![Constant::Int(100)],
        Constant::Unit,
    )]);
    for elem in [7, 3, 9, 3] {
        let mut env = Env::new();
        env.insert("elem".into(), RtValue::Const(Constant::Int(elem)));
        let (_, t) = interp.eval(&env, &trace, insert).unwrap();
        trace = t;
    }
    println!("final trace: {trace}");
    for el in [3, 7, 9, 100] {
        let model = TraceModel::new(Interpretation::new()).bind("el", Constant::Int(el));
        println!(
            "I_MinSet({el}) holds on the replayed trace: {}",
            accepts(&model, &trace, &bench.invariant).unwrap()
        );
    }

    // Static verification of the whole API.
    let mut checker = bench.checker();
    for m in &bench.methods {
        let report = checker.check_method(&m.sig, &m.body).unwrap();
        println!(
            "checker: {:<18} verified={} (expected {}), assumed preconditions: {}",
            m.sig.name, report.verified, m.expect_verified, report.stats.assumed_preconditions
        );
    }
}
