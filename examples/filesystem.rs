//! The motivating example of the paper (§2): a Unix-like file system over a key-value
//! store. Shows both sides of the system:
//!
//! 1. the *interpreter* replays the correct `add` and the buggy `add_bad` and checks their
//!    traces against the representation invariant `I_FS` (Example 2.1/2.2), and
//! 2. the *type checker* verifies `add` and rejects `add_bad` without running them.
//!
//! Run with `cargo run --release -p marple --example filesystem`.

use hat_lang::interp::{Env, Interpreter, RtValue};
use hat_logic::{Constant, Interpretation, Term};
use hat_sfa::{accepts, Event, Trace, TraceModel};
use hat_suite::filesystem;

fn main() {
    let bench = hat_suite::find("FileSystem", "KVStore").expect("benchmark exists");

    // --- Dynamic validation via the interpreter -------------------------------------
    let interp = Interpreter::new(bench.model.clone(), Interpretation::filesystem());
    let init = Trace::from_events(vec![Event::new(
        "put",
        vec![Constant::atom("/"), Constant::atom("dir:root")],
        Constant::Unit,
    )]);
    let mut env = Env::new();
    env.insert("path".into(), RtValue::Const(Constant::atom("/a/b.txt")));
    env.insert("payload".into(), RtValue::Const(Constant::atom("file:1")));

    let add = &bench
        .methods
        .iter()
        .find(|m| m.sig.name == "add")
        .unwrap()
        .body;
    let add_bad = &bench
        .methods
        .iter()
        .find(|m| m.sig.name == "add_bad")
        .unwrap()
        .body;
    let (v_ok, t_ok) = interp.eval(&env, &init, add).unwrap();
    let (v_bad, t_bad) = interp.eval(&env, &init, add_bad).unwrap();
    println!("add      returned {v_ok}, trace: {t_ok}");
    println!("add_bad  returned {v_bad}, trace: {t_bad}");

    let model = TraceModel::new(Interpretation::filesystem()).bind("p", Constant::atom("/a/b.txt"));
    let inv = filesystem::i_fs(Term::var("p"));
    println!(
        "trace of add     satisfies I_FS: {}",
        accepts(&model, &t_ok, &inv).unwrap()
    );
    println!(
        "trace of add_bad satisfies I_FS: {}",
        accepts(&model, &t_bad, &inv).unwrap()
    );

    // --- Static verification via the HAT checker ------------------------------------
    let mut checker = bench.checker();
    for m in &bench.methods {
        let report = checker.check_method(&m.sig, &m.body).unwrap();
        println!(
            "checker: {:<12} verified={} (expected {}) — #SAT={} #FA⊆={} t={:.1}s",
            m.sig.name,
            report.verified,
            m.expect_verified,
            report.stats.sat_queries,
            report.stats.fa_inclusions,
            report.stats.total_time.as_secs_f64()
        );
    }
}
