//! A minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! The container this workspace builds in has no network access, so the real
//! `criterion` cannot be fetched. This shim implements exactly the API surface the
//! workspace's benches use — [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `iter`, and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple wall-clock harness that reports mean/min/max per benchmark. Swap it
//! for the real crate (same API) when building with registry access.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away. A best-effort port of
/// `criterion::black_box` built on `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; command-line filtering is not supported
    /// by the shim, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark function and prints a summary line.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let (mean, min, max) = bencher.summary();
        println!(
            "bench {}/{name}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({} samples)",
            self.name,
            mean.as_secs_f64() * 1e3,
            min.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (the shim prints per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` `sample_size` times (after one untimed warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let max = *self.samples.iter().max().expect("non-empty");
        (mean, min, max)
    }
}

/// Declares a function running a list of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
